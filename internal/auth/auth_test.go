package auth

import (
	"testing"

	"ezbft/internal/types"
)

func clusterNodes() []types.NodeID {
	return []types.NodeID{
		types.ReplicaNode(0), types.ReplicaNode(1),
		types.ReplicaNode(2), types.ReplicaNode(3),
		types.ClientNode(0),
	}
}

func TestNoop(t *testing.T) {
	a := Noop{}
	tok := a.Sign([]byte("payload"))
	if err := a.Verify(types.ReplicaNode(0), []byte("anything"), tok); err != nil {
		t.Fatal(err)
	}
}

func TestHMACSignVerify(t *testing.T) {
	ring := NewHMACKeyring([]byte("master-secret"))
	signer := ring.ForNode(types.ReplicaNode(0))
	verifier := ring.ForNode(types.ReplicaNode(1))

	payload := []byte("the message body")
	tok := signer.Sign(payload)
	if err := verifier.Verify(types.ReplicaNode(0), payload, tok); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
	if err := verifier.Verify(types.ReplicaNode(2), payload, tok); err == nil {
		t.Fatal("token attributed to wrong signer accepted")
	}
	if err := verifier.Verify(types.ReplicaNode(0), []byte("tampered"), tok); err == nil {
		t.Fatal("tampered payload accepted")
	}
	tampered := append([]byte(nil), tok...)
	tampered[0] ^= 0xFF
	if err := verifier.Verify(types.ReplicaNode(0), payload, tampered); err == nil {
		t.Fatal("tampered token accepted")
	}
}

func TestHMACKeyringIsolation(t *testing.T) {
	ring1 := NewHMACKeyring([]byte("secret-1"))
	ring2 := NewHMACKeyring([]byte("secret-2"))
	tok := ring1.ForNode(types.ReplicaNode(0)).Sign([]byte("m"))
	if err := ring2.ForNode(types.ReplicaNode(1)).Verify(types.ReplicaNode(0), []byte("m"), tok); err == nil {
		t.Fatal("token crossed keyrings")
	}
}

func TestECDSASignVerify(t *testing.T) {
	ring, err := NewECDSAKeyring(nil, clusterNodes())
	if err != nil {
		t.Fatal(err)
	}
	signer, err := ring.ForNode(types.ReplicaNode(0))
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := ring.ForNode(types.ClientNode(0))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("spec-order body")
	tok := signer.Sign(payload)
	if len(tok) != 64 {
		t.Fatalf("token length %d, want 64", len(tok))
	}
	if err := verifier.Verify(types.ReplicaNode(0), payload, tok); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := verifier.Verify(types.ReplicaNode(1), payload, tok); err == nil {
		t.Fatal("signature attributed to wrong signer accepted")
	}
	if err := verifier.Verify(types.ReplicaNode(0), []byte("other"), tok); err == nil {
		t.Fatal("signature over different payload accepted")
	}
	if err := verifier.Verify(types.ReplicaNode(0), payload, tok[:10]); err == nil {
		t.Fatal("malformed token accepted")
	}
	if err := verifier.Verify(types.NodeID(99), payload, tok); err == nil {
		t.Fatal("unknown signer accepted")
	}
}

func TestProviderSchemes(t *testing.T) {
	nodes := clusterNodes()
	for _, scheme := range []Scheme{SchemeNoop, SchemeHMAC, SchemeECDSA} {
		p, err := NewProvider(scheme, nodes)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if p.Scheme() != scheme {
			t.Fatalf("scheme = %v, want %v", p.Scheme(), scheme)
		}
		a, err := p.ForNode(types.ReplicaNode(0))
		if err != nil {
			t.Fatalf("%v ForNode: %v", scheme, err)
		}
		b, err := p.ForNode(types.ReplicaNode(1))
		if err != nil {
			t.Fatalf("%v ForNode: %v", scheme, err)
		}
		payload := []byte("xyz")
		if err := b.Verify(types.ReplicaNode(0), payload, a.Sign(payload)); err != nil {
			t.Fatalf("%v: cross-node verify failed: %v", scheme, err)
		}
	}
}

func TestProviderUnknownScheme(t *testing.T) {
	if _, err := NewProvider(Scheme(0), nil); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}
