// Package auth provides message authentication for the protocols: a common
// Authenticator interface with no-op, HMAC (pairwise symmetric keys), and
// ECDSA P-256 implementations, mirroring the paper's use of Go's crypto
// package ("We used the HMAC and ECDSA algorithms in Go's crypto package to
// authenticate the messages exchanged by the clients and the replicas").
//
// Signatures are computed over the deterministic codec encoding of a
// message body. A Keyring holds one Authenticator per (signer, verifier)
// relationship and is shared by all nodes of a simulated cluster; live
// deployments construct per-node keyrings from distributed key material.
package auth

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"

	"ezbft/internal/types"
)

// Scheme selects an authentication algorithm.
type Scheme uint8

// Supported schemes.
const (
	SchemeNoop Scheme = iota + 1
	SchemeHMAC
	SchemeECDSA
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeNoop:
		return "noop"
	case SchemeHMAC:
		return "hmac"
	case SchemeECDSA:
		return "ecdsa"
	default:
		return fmt.Sprintf("Scheme(%d)", uint8(s))
	}
}

// Verification errors.
var (
	ErrBadSignature  = errors.New("auth: signature verification failed")
	ErrUnknownSigner = errors.New("auth: unknown signer")
)

// Authenticator signs and verifies message bodies on behalf of one node.
type Authenticator interface {
	// Scheme identifies the algorithm.
	Scheme() Scheme
	// Sign produces an authentication token for payload, as this node.
	Sign(payload []byte) []byte
	// Verify checks a token allegedly produced by signer over payload.
	Verify(signer types.NodeID, payload, token []byte) error
}

// --- Noop ---

// Noop is an Authenticator that produces empty tokens and accepts
// everything. It isolates protocol logic from crypto cost in tests and
// ablation benchmarks.
type Noop struct{}

var _ Authenticator = Noop{}

// Scheme implements Authenticator.
func (Noop) Scheme() Scheme { return SchemeNoop }

// Sign implements Authenticator.
func (Noop) Sign([]byte) []byte { return nil }

// Verify implements Authenticator.
func (Noop) Verify(types.NodeID, []byte, []byte) error { return nil }

// --- HMAC ---

// HMACKeyring derives pairwise symmetric keys for a cluster from a shared
// master secret. Every node holding the master secret can authenticate
// traffic from every other node. (A real deployment would provision pairwise
// keys; deriving them from a master secret keeps test setup trivial while
// exercising identical code paths.)
type HMACKeyring struct {
	master []byte
}

// NewHMACKeyring creates a keyring from a master secret.
func NewHMACKeyring(master []byte) *HMACKeyring {
	cp := make([]byte, len(master))
	copy(cp, master)
	return &HMACKeyring{master: cp}
}

// keyFor derives the symmetric key a signer uses; the key depends only on
// the signer so one token authenticates a broadcast to all peers.
func (k *HMACKeyring) keyFor(signer types.NodeID) []byte {
	mac := hmac.New(sha256.New, k.master)
	var b [4]byte
	b[0] = byte(uint32(signer) >> 24)
	b[1] = byte(uint32(signer) >> 16)
	b[2] = byte(uint32(signer) >> 8)
	b[3] = byte(uint32(signer))
	mac.Write(b[:])
	return mac.Sum(nil)
}

// HMACAuth authenticates messages for one node using keyring-derived keys.
type HMACAuth struct {
	ring *HMACKeyring
	self types.NodeID
	key  []byte
}

var _ Authenticator = (*HMACAuth)(nil)

// ForNode returns the authenticator for a specific node.
func (k *HMACKeyring) ForNode(self types.NodeID) *HMACAuth {
	return &HMACAuth{ring: k, self: self, key: k.keyFor(self)}
}

// Scheme implements Authenticator.
func (a *HMACAuth) Scheme() Scheme { return SchemeHMAC }

// Sign implements Authenticator.
func (a *HMACAuth) Sign(payload []byte) []byte {
	mac := hmac.New(sha256.New, a.key)
	mac.Write(payload)
	return mac.Sum(nil)
}

// Verify implements Authenticator.
func (a *HMACAuth) Verify(signer types.NodeID, payload, token []byte) error {
	mac := hmac.New(sha256.New, a.ring.keyFor(signer))
	mac.Write(payload)
	if !hmac.Equal(mac.Sum(nil), token) {
		return fmt.Errorf("%w: hmac from %s", ErrBadSignature, signer)
	}
	return nil
}

// --- ECDSA ---

// ECDSAKeyring holds every node's public key plus this process's private
// keys. In simulation a single keyring is shared; over TCP each process
// holds only its own private key.
type ECDSAKeyring struct {
	pub  map[types.NodeID]*ecdsa.PublicKey
	priv map[types.NodeID]*ecdsa.PrivateKey
}

// NewECDSAKeyring generates fresh P-256 keypairs for the given nodes using
// the supplied entropy source (crypto/rand.Reader in production;
// deterministic readers in tests).
func NewECDSAKeyring(entropy io.Reader, nodes []types.NodeID) (*ECDSAKeyring, error) {
	if entropy == nil {
		entropy = rand.Reader
	}
	k := &ECDSAKeyring{
		pub:  make(map[types.NodeID]*ecdsa.PublicKey, len(nodes)),
		priv: make(map[types.NodeID]*ecdsa.PrivateKey, len(nodes)),
	}
	for _, n := range nodes {
		key, err := ecdsa.GenerateKey(elliptic.P256(), entropy)
		if err != nil {
			return nil, fmt.Errorf("auth: generating key for %s: %w", n, err)
		}
		k.priv[n] = key
		k.pub[n] = &key.PublicKey
	}
	return k, nil
}

// ECDSAAuth signs as one node and verifies against the keyring.
type ECDSAAuth struct {
	ring *ECDSAKeyring
	self types.NodeID
	key  *ecdsa.PrivateKey
}

var _ Authenticator = (*ECDSAAuth)(nil)

// ForNode returns the authenticator for a node; the node must have a private
// key in the ring.
func (k *ECDSAKeyring) ForNode(self types.NodeID) (*ECDSAAuth, error) {
	key, ok := k.priv[self]
	if !ok {
		return nil, fmt.Errorf("%w: no private key for %s", ErrUnknownSigner, self)
	}
	return &ECDSAAuth{ring: k, self: self, key: key}, nil
}

// Scheme implements Authenticator.
func (a *ECDSAAuth) Scheme() Scheme { return SchemeECDSA }

// Sign implements Authenticator.
func (a *ECDSAAuth) Sign(payload []byte) []byte {
	digest := sha256.Sum256(payload)
	r, s, err := ecdsa.Sign(rand.Reader, a.key, digest[:])
	if err != nil {
		// Signing with a valid key and entropy source cannot fail in
		// practice; an empty token will simply fail verification downstream.
		return nil
	}
	return encodeSig(r, s)
}

// Verify implements Authenticator.
func (a *ECDSAAuth) Verify(signer types.NodeID, payload, token []byte) error {
	pub, ok := a.ring.pub[signer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownSigner, signer)
	}
	r, s, err := decodeSig(token)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(payload)
	if !ecdsa.Verify(pub, digest[:], r, s) {
		return fmt.Errorf("%w: ecdsa from %s", ErrBadSignature, signer)
	}
	return nil
}

// encodeSig packs (r, s) as two 32-byte big-endian values.
func encodeSig(r, s *big.Int) []byte {
	out := make([]byte, 64)
	r.FillBytes(out[:32])
	s.FillBytes(out[32:])
	return out
}

func decodeSig(token []byte) (*big.Int, *big.Int, error) {
	if len(token) != 64 {
		return nil, nil, fmt.Errorf("%w: token length %d", ErrBadSignature, len(token))
	}
	r := new(big.Int).SetBytes(token[:32])
	s := new(big.Int).SetBytes(token[32:])
	return r, s, nil
}

// --- Provider ---

// Provider hands out authenticators for every node in a cluster. It is the
// cluster-level factory that protocol runtimes use.
type Provider struct {
	scheme Scheme
	hmac   *HMACKeyring
	ecdsa  *ECDSAKeyring
	cache  *VerifyCache
}

// NewProvider builds a provider for the given scheme covering the given
// nodes. For SchemeECDSA, keys are generated with crypto/rand.
func NewProvider(scheme Scheme, nodes []types.NodeID) (*Provider, error) {
	p := &Provider{scheme: scheme}
	switch scheme {
	case SchemeNoop:
	case SchemeHMAC:
		secret := make([]byte, 32)
		if _, err := io.ReadFull(rand.Reader, secret); err != nil {
			return nil, fmt.Errorf("auth: reading master secret: %w", err)
		}
		p.hmac = NewHMACKeyring(secret)
	case SchemeECDSA:
		ring, err := NewECDSAKeyring(nil, nodes)
		if err != nil {
			return nil, err
		}
		p.ecdsa = ring
	default:
		return nil, fmt.Errorf("auth: unsupported scheme %v", scheme)
	}
	return p, nil
}

// Scheme returns the provider's algorithm.
func (p *Provider) Scheme() Scheme { return p.scheme }

// UseCache makes every authenticator the provider hands out share one
// verified-signature cache (capacity <= 0 selects DefaultCacheCapacity).
// All nodes of a provider already share key material, so a shared memo is
// sound: a broadcast frame is then verified once for the whole in-process
// cluster instead of once per recipient. Call before ForNode.
func (p *Provider) UseCache(capacity int) *VerifyCache {
	if p.cache == nil {
		p.cache = NewVerifyCache(capacity)
	}
	return p.cache
}

// ForNode returns the authenticator a node should use.
func (p *Provider) ForNode(n types.NodeID) (Authenticator, error) {
	a, err := p.forNode(n)
	if err != nil {
		return nil, err
	}
	if p.cache != nil {
		a = Cached(a, n, p.cache)
	}
	return a, nil
}

func (p *Provider) forNode(n types.NodeID) (Authenticator, error) {
	switch p.scheme {
	case SchemeNoop:
		return Noop{}, nil
	case SchemeHMAC:
		return p.hmac.ForNode(n), nil
	case SchemeECDSA:
		return p.ecdsa.ForNode(n)
	default:
		return nil, fmt.Errorf("auth: unsupported scheme %v", p.scheme)
	}
}
