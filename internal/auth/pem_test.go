package auth

import (
	"bytes"
	"testing"

	"ezbft/internal/types"
)

// TestPEMRoundTrip exports per-node bundles from one keyring and verifies
// cross-bundle signing: every node signs with its own bundle and every
// other bundle verifies the signature.
func TestPEMRoundTrip(t *testing.T) {
	nodes := []types.NodeID{
		types.ReplicaNode(0), types.ReplicaNode(1),
		types.ClientNode(0), types.ClientNode(5),
	}
	ring, err := NewECDSAKeyring(nil, nodes)
	if err != nil {
		t.Fatal(err)
	}
	bundles := make(map[types.NodeID][]byte, len(nodes))
	for _, n := range nodes {
		b, err := ring.ExportPEM(n)
		if err != nil {
			t.Fatalf("export %s: %v", n, err)
		}
		bundles[n] = b
	}

	payload := []byte("the signed body")
	for _, signer := range nodes {
		sring, err := ParseECDSAKeyringPEM(bundles[signer])
		if err != nil {
			t.Fatalf("parse %s: %v", signer, err)
		}
		sa, err := sring.ForNode(signer)
		if err != nil {
			t.Fatal(err)
		}
		sig := sa.Sign(payload)
		for _, verifier := range nodes {
			vring, err := ParseECDSAKeyringPEM(bundles[verifier])
			if err != nil {
				t.Fatal(err)
			}
			va, err := vring.ForNode(verifier)
			if err != nil {
				t.Fatal(err)
			}
			if err := va.Verify(signer, payload, sig); err != nil {
				t.Fatalf("%s cannot verify %s: %v", verifier, signer, err)
			}
			if err := va.Verify(signer, []byte("tampered"), sig); err == nil {
				t.Fatalf("%s accepted a tampered payload from %s", verifier, signer)
			}
		}
	}
}

// TestPEMBundleCannotImpersonate pins the key-distribution story: a node's
// bundle holds only its own private key, so it cannot sign as anyone else.
func TestPEMBundleCannotImpersonate(t *testing.T) {
	nodes := []types.NodeID{types.ReplicaNode(0), types.ClientNode(0)}
	ring, err := NewECDSAKeyring(nil, nodes)
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := ring.ExportPEM(types.ClientNode(0))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseECDSAKeyringPEM(bundle)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parsed.ForNode(types.ReplicaNode(0)); err == nil {
		t.Fatal("client bundle yielded a replica authenticator")
	}
	// The client's forged "replica" signature must not verify.
	ca, err := parsed.ForNode(types.ClientNode(0))
	if err != nil {
		t.Fatal(err)
	}
	forged := ca.Sign([]byte("body"))
	verifier, err := ring.ForNode(types.ReplicaNode(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := verifier.Verify(types.ReplicaNode(0), []byte("body"), forged); err == nil {
		t.Fatal("forged replica signature verified")
	}
}

// TestPEMRejectsGarbage pins the error paths.
func TestPEMRejectsGarbage(t *testing.T) {
	if _, err := ParseECDSAKeyringPEM(nil); err == nil {
		t.Fatal("empty material parsed")
	}
	if _, err := ParseECDSAKeyringPEM(bytes.Repeat([]byte("x"), 128)); err == nil {
		t.Fatal("garbage material parsed")
	}
}
