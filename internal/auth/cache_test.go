package auth

import (
	"sync"
	"testing"

	"ezbft/internal/types"
)

func ecdsaPair(t *testing.T) (signer, verifier Authenticator, cache *VerifyCache) {
	t.Helper()
	nodes := []types.NodeID{types.ReplicaNode(0), types.ReplicaNode(1)}
	ring, err := NewECDSAKeyring(nil, nodes)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ring.ForNode(types.ReplicaNode(0))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ring.ForNode(types.ReplicaNode(1))
	if err != nil {
		t.Fatal(err)
	}
	cache = NewVerifyCache(8)
	return Cached(s, types.ReplicaNode(0), cache), Cached(v, types.ReplicaNode(1), cache), cache
}

// TestCacheHitAndForgeryRejected: a verified signature is memoized, but a
// cached-verified token presented with a different body digest — the replay
// forgery the cache key must defeat — is still rejected, as is the same
// body attributed to a different signer.
func TestCacheHitAndForgeryRejected(t *testing.T) {
	signer, verifier, cache := ecdsaPair(t)
	body := []byte("specreply body")
	sig := signer.Sign(body)

	if err := verifier.Verify(types.ReplicaNode(0), body, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	// Now cached; a second verification must still succeed (via the memo).
	if err := verifier.Verify(types.ReplicaNode(0), body, sig); err != nil {
		t.Fatalf("cached signature rejected: %v", err)
	}

	// Forgery: reuse the cached-verified token over a different body. The
	// cache key includes the body digest, so this must miss and fail the
	// real verification.
	if err := verifier.Verify(types.ReplicaNode(0), []byte("a different body"), sig); err == nil {
		t.Fatal("cached token accepted over a different body digest")
	}
	// Forgery: same body and token, different claimed signer.
	if err := verifier.Verify(types.ReplicaNode(1), body, sig); err == nil {
		t.Fatal("cached token accepted for a different signer")
	}
	// A tampered token over the cached body must also fail.
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xFF
	if err := verifier.Verify(types.ReplicaNode(0), body, bad); err == nil {
		t.Fatal("tampered token accepted")
	}
	if cache.Len() == 0 {
		t.Fatal("cache recorded nothing")
	}
}

// TestCacheSignSeedsVerification: signing inserts the fresh signature into
// the shared cache, so a verifier sharing the cache never runs the real
// ECDSA verification (observable through a cache sized to evict nothing).
func TestCacheSignSeedsVerification(t *testing.T) {
	signer, verifier, cache := ecdsaPair(t)
	body := []byte("seeded")
	sig := signer.Sign(body)
	if cache.Len() != 1 {
		t.Fatalf("Sign seeded %d entries, want 1", cache.Len())
	}
	if err := verifier.Verify(types.ReplicaNode(0), body, sig); err != nil {
		t.Fatalf("seeded signature rejected: %v", err)
	}
	if cache.Len() != 1 {
		t.Fatalf("verification of a seeded signature grew the cache to %d", cache.Len())
	}
}

// TestCacheBounded: the two-generation rotation keeps the cache at no more
// than ~2× capacity regardless of insert volume.
func TestCacheBounded(t *testing.T) {
	cache := NewVerifyCache(16)
	for i := 0; i < 1000; i++ {
		cache.put(cacheKey{signer: types.NodeID(i), sig: "s"})
	}
	if cache.Len() > 32 {
		t.Fatalf("cache grew to %d entries, capacity 16 allows at most 32", cache.Len())
	}
	// The most recent insert is always resident.
	if !cache.hit(cacheKey{signer: types.NodeID(999), sig: "s"}) {
		t.Fatal("most recent entry evicted")
	}
}

// TestCacheConcurrent hammers one cache from many goroutines; the race
// detector is the assertion.
func TestCacheConcurrent(t *testing.T) {
	signer, verifier, _ := ecdsaPair(t)
	body := []byte("concurrent body")
	sig := signer.Sign(body)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := verifier.Verify(types.ReplicaNode(0), body, sig); err != nil {
					t.Errorf("verify: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCacheNoopPassthrough: wrapping a Noop authenticator is a no-op.
func TestCacheNoopPassthrough(t *testing.T) {
	if a := Cached(Noop{}, types.ReplicaNode(0), nil); a != (Noop{}) {
		t.Fatalf("Cached(Noop) = %T, want Noop", a)
	}
}

// BenchmarkECDSAVerify measures the raw asymmetric verification the cache
// elides on repeats.
func BenchmarkECDSAVerify(b *testing.B) {
	nodes := []types.NodeID{types.ReplicaNode(0)}
	ring, err := NewECDSAKeyring(nil, nodes)
	if err != nil {
		b.Fatal(err)
	}
	a, err := ring.ForNode(types.ReplicaNode(0))
	if err != nil {
		b.Fatal(err)
	}
	body := []byte("benchmark body benchmark body benchmark body")
	sig := a.Sign(body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Verify(types.ReplicaNode(0), body, sig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkECDSAVerifyCached measures a cache hit: one SHA-256 plus a map
// lookup instead of an ECDSA verification.
func BenchmarkECDSAVerifyCached(b *testing.B) {
	nodes := []types.NodeID{types.ReplicaNode(0)}
	ring, err := NewECDSAKeyring(nil, nodes)
	if err != nil {
		b.Fatal(err)
	}
	inner, err := ring.ForNode(types.ReplicaNode(0))
	if err != nil {
		b.Fatal(err)
	}
	a := Cached(inner, types.ReplicaNode(0), nil)
	body := []byte("benchmark body benchmark body benchmark body")
	sig := a.Sign(body)
	if err := a.Verify(types.ReplicaNode(0), body, sig); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Verify(types.ReplicaNode(0), body, sig); err != nil {
			b.Fatal(err)
		}
	}
}
