package auth

import (
	"crypto/sha256"
	"sync"

	"ezbft/internal/types"
)

// DefaultCacheCapacity is the verified-signature memo size used when a
// caller enables caching without choosing one. At 64-byte ECDSA tokens a
// full cache holds on the order of 10 MB of keys — far more entries than a
// cluster keeps in flight.
const DefaultCacheCapacity = 1 << 16

// cacheKey identifies one verification: who allegedly signed, the digest of
// the exact bytes the signature covers, and the signature itself. All three
// take part in the key, so a signature that verified for one body can never
// vouch for a different body (a forgery with a reused token misses the
// cache and fails the real verification), and a body signed by one node can
// never be replayed as another's.
type cacheKey struct {
	signer types.NodeID
	digest [sha256.Size]byte
	sig    string
}

// VerifyCache is a bounded, concurrency-safe memo of signature
// verifications that already succeeded. The same signature tends to arrive
// many times — a SPECREPLY reappears in several clients' commit
// certificates, duplicate slow-path certificates carry the same 2f+1
// replies, retransmissions repeat whole frames, and owner-change proofs
// embed SPECORDERs the replica verified when they first arrived — and each
// reappearance costs a full ECDSA verification without the memo.
//
// Only successes are cached (a failure is already cheap to reproduce and
// caching it would let one malformed arrival censor a later valid one).
// Boundedness uses two generations: inserts go to the current generation,
// lookups consult both, and when the current generation fills it becomes
// the previous one — an O(1) wholesale eviction that keeps the hot working
// set resident.
type VerifyCache struct {
	mu       sync.RWMutex
	capacity int
	cur      map[cacheKey]struct{}
	prev     map[cacheKey]struct{}
}

// NewVerifyCache creates a cache holding at most ~2×capacity entries
// (capacity <= 0 selects DefaultCacheCapacity).
func NewVerifyCache(capacity int) *VerifyCache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &VerifyCache{
		capacity: capacity,
		cur:      make(map[cacheKey]struct{}, capacity),
	}
}

func (c *VerifyCache) key(signer types.NodeID, payload, token []byte) cacheKey {
	return cacheKey{signer: signer, digest: sha256.Sum256(payload), sig: string(token)}
}

// hit reports whether the exact (signer, payload, token) triple verified
// before.
func (c *VerifyCache) hit(k cacheKey) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, ok := c.cur[k]; ok {
		return true
	}
	_, ok := c.prev[k]
	return ok
}

// put records a successful verification, rotating generations at capacity.
func (c *VerifyCache) put(k cacheKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.cur) >= c.capacity {
		c.prev = c.cur
		c.cur = make(map[cacheKey]struct{}, c.capacity)
	}
	c.cur[k] = struct{}{}
}

// Len returns the number of resident entries (both generations).
func (c *VerifyCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.cur) + len(c.prev)
}

// CachedAuth wraps an Authenticator with a VerifyCache: Verify consults the
// memo before running the underlying (expensive, for ECDSA) check and
// memoizes successes; Sign additionally seeds the memo with the node's own
// fresh signature, so a replica later validating a certificate that embeds
// its own SPECREPLY — or a commit certificate carrying the SPECORDER it
// already verified — pays a hash lookup instead of an ECDSA verification.
// Several nodes of one trust domain (an in-process cluster sharing a
// keyring) may share one cache; the memo only ever asserts facts that are
// receiver-independent.
type CachedAuth struct {
	inner Authenticator
	self  types.NodeID
	cache *VerifyCache
}

var _ Authenticator = (*CachedAuth)(nil)

// Cached wraps a for node self with the given cache (nil cache creates a
// private one with DefaultCacheCapacity). Wrapping a Noop authenticator is
// pointless and returns it unchanged.
func Cached(a Authenticator, self types.NodeID, cache *VerifyCache) Authenticator {
	if a == nil || a.Scheme() == SchemeNoop {
		return a
	}
	if cache == nil {
		cache = NewVerifyCache(0)
	}
	return &CachedAuth{inner: a, self: self, cache: cache}
}

// Scheme implements Authenticator.
func (a *CachedAuth) Scheme() Scheme { return a.inner.Scheme() }

// Unwrap returns the underlying authenticator.
func (a *CachedAuth) Unwrap() Authenticator { return a.inner }

// Sign implements Authenticator; the fresh signature is seeded into the
// cache as already-verified (signing with our own key proves it verifies).
func (a *CachedAuth) Sign(payload []byte) []byte {
	sig := a.inner.Sign(payload)
	if len(sig) > 0 {
		a.cache.put(a.cache.key(a.self, payload, sig))
	}
	return sig
}

// Verify implements Authenticator: a memo hit costs one SHA-256 of the
// payload; a miss runs the real verification and memoizes success.
func (a *CachedAuth) Verify(signer types.NodeID, payload, token []byte) error {
	k := a.cache.key(signer, payload, token)
	if a.cache.hit(k) {
		return nil
	}
	if err := a.inner.Verify(signer, payload, token); err != nil {
		return err
	}
	a.cache.put(k)
	return nil
}
