// Package kvstore implements the replicated key-value store application the
// paper uses for its evaluation ("We implemented a replicated key-value
// store to evaluate the protocols"). It is the reference implementation of
// the pluggable types.Application contract — deployments replace it with
// their own state machine through the application factories on every
// substrate — and additionally supports the speculative-execution contract
// ezBFT requires: commands are first executed speculatively on an overlay;
// the overlay can be rolled back wholesale and commands re-executed in
// final order on the base state.
//
// The store also implements types.ConcurrentApplication for the
// deterministic parallel executor: each command's footprint is exactly its
// key, and state is partitioned into lock stripes by key hash so
// PromoteFinal calls on different keys proceed concurrently instead of
// serializing on one store-wide mutex. Whole-store operations (Digest,
// Snapshot, Restore, Rollback, Len) take every stripe in index order, so
// they remain atomic with respect to in-flight per-key operations and their
// output stays byte-identical to the single-mutex implementation.
package kvstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"

	"ezbft/internal/types"
)

// numStripes is the lock-stripe count; a power of two so the hash reduces
// with a mask. 32 stripes keep the collision probability low for the worker
// counts the executor runs (≤ GOMAXPROCS in practice).
const numStripes = 32

// stripe is one lock-partition of the store: final state plus the
// speculative overlay for the keys that hash here.
type stripe struct {
	mu    sync.RWMutex
	final map[string][]byte
	spec  map[string][]byte // overlay; reads fall through to final
}

// Store is a speculative key-value store, safe for one writer (the owning
// replica process) with any number of concurrent observers — and, under the
// types.ConcurrentApplication contract, safe for concurrent PromoteFinal
// calls on non-interfering commands.
type Store struct {
	stripes [numStripes]stripe

	finalExecs atomic.Uint64
	specExecs  atomic.Uint64
	rollbacks  atomic.Uint64
}

var (
	_ types.SpeculativeApplication = (*Store)(nil)
	_ types.ConcurrentApplication  = (*Store)(nil)
	_ types.Snapshotter            = (*Store)(nil)
)

// New returns an empty store.
func New() *Store {
	s := &Store{}
	for i := range s.stripes {
		s.stripes[i].final = make(map[string][]byte)
		s.stripes[i].spec = make(map[string][]byte)
	}
	return s
}

// stripeIndex hashes a key onto its lock stripe (FNV-1a, masked).
func stripeIndex(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (numStripes - 1))
}

func (s *Store) stripeOf(key string) *stripe { return &s.stripes[stripeIndex(key)] }

// lockAll takes every stripe in index order (deadlock-free against the
// per-key paths, which hold at most one stripe).
func (s *Store) lockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
}

func (s *Store) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

func (s *Store) rlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RLock()
	}
}

func (s *Store) runlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.RUnlock()
	}
}

// Apply implements types.Application: execute on the final state. It is
// what non-speculative protocols (PBFT, Zyzzyva, FaB) call.
func (s *Store) Apply(cmd types.Command) types.Result {
	return s.PromoteFinal(cmd)
}

// SpecExecute implements types.SpeculativeApplication: apply a command on
// top of the latest state (speculative overlay over final), per paper
// §IV-B ("speculative execution can happen in either the speculative state
// or in the final version of the state, whichever is the latest").
func (s *Store) SpecExecute(cmd types.Command) types.Result {
	s.specExecs.Add(1)
	if cmd.Op == types.OpNoop {
		return types.Result{OK: true}
	}
	st := s.stripeOf(cmd.Key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return apply(cmd, st.specRead, st.specWrite)
}

// Rollback implements types.SpeculativeApplication: discard the overlay.
func (s *Store) Rollback() {
	s.lockAll()
	defer s.unlockAll()
	for i := range s.stripes {
		if len(s.stripes[i].spec) > 0 {
			s.stripes[i].spec = make(map[string][]byte)
		}
	}
	s.rollbacks.Add(1)
}

// PromoteFinal implements types.SpeculativeApplication: execute on the
// previous final version of the state only. Under the
// types.ConcurrentApplication contract it may be called from multiple
// goroutines at once for non-interfering commands; each call holds only its
// key's stripe lock.
func (s *Store) PromoteFinal(cmd types.Command) types.Result {
	s.finalExecs.Add(1)
	if cmd.Op == types.OpNoop {
		return types.Result{OK: true}
	}
	st := s.stripeOf(cmd.Key)
	st.mu.Lock()
	defer st.mu.Unlock()
	return apply(cmd, st.finalRead, st.finalWrite)
}

// Footprint implements types.ConcurrentApplication: a command touches
// exactly its key (no-ops touch nothing; they never reach the application
// during final execution anyway).
func (s *Store) Footprint(cmd types.Command) []types.Key {
	if cmd.Op == types.OpNoop {
		return nil
	}
	return []types.Key{types.Key(cmd.Key)}
}

// Stats returns execution counters (final, speculative, rollbacks).
func (s *Store) Stats() (finalExecs, specExecs, rollbacks uint64) {
	return s.finalExecs.Load(), s.specExecs.Load(), s.rollbacks.Load()
}

// Get reads a key from the final state (test/inspection helper).
func (s *Store) Get(key string) ([]byte, bool) {
	st := s.stripeOf(key)
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.final[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of keys in the final state.
func (s *Store) Len() int {
	s.rlockAll()
	defer s.runlockAll()
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].final)
	}
	return n
}

// Digest returns a deterministic digest of the final state, used for
// checkpoint certificates and state cross-checks between replicas. The
// output is a function of the key-value contents only — independent of the
// stripe layout, and byte-identical to the pre-striping implementation.
func (s *Store) Digest() types.Digest {
	s.rlockAll()
	defer s.runlockAll()
	keys := make([]string, 0, s.lenLocked())
	for i := range s.stripes {
		for k := range s.stripes[i].final {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	h := sha256.New()
	var lenBuf [8]byte
	for _, k := range keys {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(k)))
		h.Write(lenBuf[:])
		h.Write([]byte(k))
		v := s.stripes[stripeIndex(k)].final[k]
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(v)))
		h.Write(lenBuf[:])
		h.Write(v)
	}
	var d types.Digest
	copy(d[:], h.Sum(nil))
	return d
}

func (s *Store) lenLocked() int {
	n := 0
	for i := range s.stripes {
		n += len(s.stripes[i].final)
	}
	return n
}

// Snapshot implements types.Snapshotter: a deterministic serialization of
// the final state (sorted keys, length-prefixed), used by checkpoint-based
// state transfer. The speculative overlay is deliberately excluded — it is
// replica-local and discarded on Restore anyway.
func (s *Store) Snapshot() []byte {
	s.rlockAll()
	defer s.runlockAll()
	keys := make([]string, 0, s.lenLocked())
	size := 8
	for i := range s.stripes {
		for k, v := range s.stripes[i].final {
			keys = append(keys, k)
			size += 16 + len(k) + len(v)
		}
	}
	sort.Strings(keys)
	out := make([]byte, 0, size)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(keys)))
	out = append(out, lenBuf[:]...)
	for _, k := range keys {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(k)))
		out = append(out, lenBuf[:]...)
		out = append(out, k...)
		v := s.stripes[stripeIndex(k)].final[k]
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(v)))
		out = append(out, lenBuf[:]...)
		out = append(out, v...)
	}
	return out
}

// Restore implements types.Snapshotter: replace the final state with the
// snapshot's and clear the speculative overlay.
func (s *Store) Restore(snap []byte) error {
	if len(snap) < 8 {
		return errors.New("kvstore: short snapshot")
	}
	n := binary.BigEndian.Uint64(snap)
	// Every entry needs at least two 8-byte length prefixes, so the claimed
	// count is bounded by the material actually present — a forged header
	// cannot force a huge preallocation.
	if n > uint64(len(snap))/16 {
		return errors.New("kvstore: snapshot entry count exceeds payload")
	}
	off := uint64(8)
	final := make(map[string][]byte, n)
	readBlock := func() ([]byte, error) {
		if uint64(len(snap)) < off+8 {
			return nil, errors.New("kvstore: truncated snapshot")
		}
		l := binary.BigEndian.Uint64(snap[off:])
		off += 8
		if uint64(len(snap)) < off+l {
			return nil, errors.New("kvstore: truncated snapshot")
		}
		b := snap[off : off+l]
		off += l
		return b, nil
	}
	for i := uint64(0); i < n; i++ {
		k, err := readBlock()
		if err != nil {
			return err
		}
		v, err := readBlock()
		if err != nil {
			return err
		}
		final[string(k)] = append([]byte(nil), v...)
	}
	s.lockAll()
	defer s.unlockAll()
	for i := range s.stripes {
		s.stripes[i].final = make(map[string][]byte)
		s.stripes[i].spec = make(map[string][]byte)
	}
	for k, v := range final {
		s.stripes[stripeIndex(k)].final[k] = v
	}
	return nil
}

// --- internals ---

func (st *stripe) finalRead(key string) ([]byte, bool) {
	v, ok := st.final[key]
	return v, ok
}

func (st *stripe) finalWrite(key string, v []byte) { st.final[key] = v }

func (st *stripe) specRead(key string) ([]byte, bool) {
	if v, ok := st.spec[key]; ok {
		return v, ok
	}
	v, ok := st.final[key]
	return v, ok
}

func (st *stripe) specWrite(key string, v []byte) { st.spec[key] = v }

// apply executes one command against the given read/write accessors.
// Results are deterministic functions of (state, command); INCR returns no
// value so that commuting increments produce identical replies regardless
// of order (see types.Command.Interferes).
func apply(cmd types.Command, read func(string) ([]byte, bool), write func(string, []byte)) types.Result {
	switch cmd.Op {
	case types.OpGet:
		v, ok := read(cmd.Key)
		if !ok {
			return types.Result{OK: false}
		}
		return types.Result{OK: true, Value: append([]byte(nil), v...)}
	case types.OpPut:
		write(cmd.Key, append([]byte(nil), cmd.Value...))
		return types.Result{OK: true}
	case types.OpIncr:
		var cur uint64
		if v, ok := read(cmd.Key); ok && len(v) == 8 {
			cur = binary.BigEndian.Uint64(v)
		}
		next := make([]byte, 8)
		binary.BigEndian.PutUint64(next, cur+1)
		write(cmd.Key, next)
		return types.Result{OK: true}
	case types.OpNoop:
		return types.Result{OK: true}
	default:
		return types.Result{OK: false}
	}
}

// Counter decodes the 8-byte big-endian counter representation used by
// INCR; helper for examples and tests.
func Counter(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}
