// Package kvstore implements the replicated key-value store application the
// paper uses for its evaluation ("We implemented a replicated key-value
// store to evaluate the protocols"). It is the reference implementation of
// the pluggable types.Application contract — deployments replace it with
// their own state machine through the application factories on every
// substrate — and additionally supports the speculative-execution contract
// ezBFT requires: commands are first executed speculatively on an overlay;
// the overlay can be rolled back wholesale and commands re-executed in
// final order on the base state.
//
// A store belongs to exactly one protocol process, and processes are
// single-threaded (see internal/proc) — but on the live substrates other
// goroutines observe the store (state digests, inspection reads) while the
// replica executes, so all operations are guarded by a read-write mutex.
package kvstore

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"sort"
	"sync"

	"ezbft/internal/types"
)

// Store is a speculative key-value store, safe for one writer (the owning
// replica process) with any number of concurrent observers.
type Store struct {
	mu    sync.RWMutex
	final map[string][]byte
	spec  map[string][]byte // overlay; reads fall through to final

	finalExecs uint64
	specExecs  uint64
	rollbacks  uint64
}

var (
	_ types.SpeculativeApplication = (*Store)(nil)
	_ types.Snapshotter            = (*Store)(nil)
)

// New returns an empty store.
func New() *Store {
	return &Store{
		final: make(map[string][]byte),
		spec:  make(map[string][]byte),
	}
}

// Apply implements types.Application: execute on the final state. It is
// what non-speculative protocols (PBFT, Zyzzyva, FaB) call.
func (s *Store) Apply(cmd types.Command) types.Result {
	return s.PromoteFinal(cmd)
}

// SpecExecute implements types.SpeculativeApplication: apply a command on
// top of the latest state (speculative overlay over final), per paper
// §IV-B ("speculative execution can happen in either the speculative state
// or in the final version of the state, whichever is the latest").
func (s *Store) SpecExecute(cmd types.Command) types.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.specExecs++
	return s.apply(cmd, s.specRead, s.specWrite)
}

// Rollback implements types.SpeculativeApplication: discard the overlay.
func (s *Store) Rollback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.spec) > 0 {
		s.spec = make(map[string][]byte)
	}
	s.rollbacks++
}

// PromoteFinal implements types.SpeculativeApplication: execute on the
// previous final version of the state only.
func (s *Store) PromoteFinal(cmd types.Command) types.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.finalExecs++
	return s.apply(cmd, s.finalRead, s.finalWrite)
}

// Stats returns execution counters (final, speculative, rollbacks).
func (s *Store) Stats() (finalExecs, specExecs, rollbacks uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.finalExecs, s.specExecs, s.rollbacks
}

// Get reads a key from the final state (test/inspection helper).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.final[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Len returns the number of keys in the final state.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.final)
}

// Digest returns a deterministic digest of the final state, used for
// checkpoint certificates and state cross-checks between replicas.
func (s *Store) Digest() types.Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.final))
	for k := range s.final {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	var lenBuf [8]byte
	for _, k := range keys {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(k)))
		h.Write(lenBuf[:])
		h.Write([]byte(k))
		v := s.final[k]
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(v)))
		h.Write(lenBuf[:])
		h.Write(v)
	}
	var d types.Digest
	copy(d[:], h.Sum(nil))
	return d
}

// Snapshot implements types.Snapshotter: a deterministic serialization of
// the final state (sorted keys, length-prefixed), used by checkpoint-based
// state transfer. The speculative overlay is deliberately excluded — it is
// replica-local and discarded on Restore anyway.
func (s *Store) Snapshot() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.final))
	size := 8
	for k := range s.final {
		keys = append(keys, k)
		size += 16 + len(k) + len(s.final[k])
	}
	sort.Strings(keys)
	out := make([]byte, 0, size)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(keys)))
	out = append(out, lenBuf[:]...)
	for _, k := range keys {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(k)))
		out = append(out, lenBuf[:]...)
		out = append(out, k...)
		v := s.final[k]
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(v)))
		out = append(out, lenBuf[:]...)
		out = append(out, v...)
	}
	return out
}

// Restore implements types.Snapshotter: replace the final state with the
// snapshot's and clear the speculative overlay.
func (s *Store) Restore(snap []byte) error {
	if len(snap) < 8 {
		return errors.New("kvstore: short snapshot")
	}
	n := binary.BigEndian.Uint64(snap)
	// Every entry needs at least two 8-byte length prefixes, so the claimed
	// count is bounded by the material actually present — a forged header
	// cannot force a huge preallocation.
	if n > uint64(len(snap))/16 {
		return errors.New("kvstore: snapshot entry count exceeds payload")
	}
	off := uint64(8)
	final := make(map[string][]byte, n)
	readBlock := func() ([]byte, error) {
		if uint64(len(snap)) < off+8 {
			return nil, errors.New("kvstore: truncated snapshot")
		}
		l := binary.BigEndian.Uint64(snap[off:])
		off += 8
		if uint64(len(snap)) < off+l {
			return nil, errors.New("kvstore: truncated snapshot")
		}
		b := snap[off : off+l]
		off += l
		return b, nil
	}
	for i := uint64(0); i < n; i++ {
		k, err := readBlock()
		if err != nil {
			return err
		}
		v, err := readBlock()
		if err != nil {
			return err
		}
		final[string(k)] = append([]byte(nil), v...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.final = final
	s.spec = make(map[string][]byte)
	return nil
}

// --- internals ---

func (s *Store) finalRead(key string) ([]byte, bool) {
	v, ok := s.final[key]
	return v, ok
}

func (s *Store) finalWrite(key string, v []byte) { s.final[key] = v }

func (s *Store) specRead(key string) ([]byte, bool) {
	if v, ok := s.spec[key]; ok {
		return v, ok
	}
	v, ok := s.final[key]
	return v, ok
}

func (s *Store) specWrite(key string, v []byte) { s.spec[key] = v }

// apply executes one command against the given read/write accessors.
// Results are deterministic functions of (state, command); INCR returns no
// value so that commuting increments produce identical replies regardless
// of order (see types.Command.Interferes).
func (s *Store) apply(cmd types.Command, read func(string) ([]byte, bool), write func(string, []byte)) types.Result {
	switch cmd.Op {
	case types.OpGet:
		v, ok := read(cmd.Key)
		if !ok {
			return types.Result{OK: false}
		}
		return types.Result{OK: true, Value: append([]byte(nil), v...)}
	case types.OpPut:
		write(cmd.Key, append([]byte(nil), cmd.Value...))
		return types.Result{OK: true}
	case types.OpIncr:
		var cur uint64
		if v, ok := read(cmd.Key); ok && len(v) == 8 {
			cur = binary.BigEndian.Uint64(v)
		}
		next := make([]byte, 8)
		binary.BigEndian.PutUint64(next, cur+1)
		write(cmd.Key, next)
		return types.Result{OK: true}
	case types.OpNoop:
		return types.Result{OK: true}
	default:
		return types.Result{OK: false}
	}
}

// Counter decodes the 8-byte big-endian counter representation used by
// INCR; helper for examples and tests.
func Counter(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}
