package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ezbft/internal/types"
)

func put(key, val string) types.Command {
	return types.Command{Op: types.OpPut, Key: key, Value: []byte(val)}
}
func get(key string) types.Command  { return types.Command{Op: types.OpGet, Key: key} }
func incr(key string) types.Command { return types.Command{Op: types.OpIncr, Key: key} }

func TestFinalPutGet(t *testing.T) {
	s := New()
	if r := s.Apply(get("k")); r.OK {
		t.Fatal("missing key reported OK")
	}
	if r := s.Apply(put("k", "v")); !r.OK {
		t.Fatal("put failed")
	}
	r := s.Apply(get("k"))
	if !r.OK || string(r.Value) != "v" {
		t.Fatalf("get = %+v", r)
	}
}

func TestSpecReadsThroughToFinal(t *testing.T) {
	s := New()
	s.PromoteFinal(put("k", "base"))
	r := s.SpecExecute(get("k"))
	if !r.OK || string(r.Value) != "base" {
		t.Fatalf("spec get = %+v", r)
	}
}

func TestSpecOverlayShadowsAndRollsBack(t *testing.T) {
	s := New()
	s.PromoteFinal(put("k", "base"))
	s.SpecExecute(put("k", "spec"))
	if r := s.SpecExecute(get("k")); string(r.Value) != "spec" {
		t.Fatalf("spec read = %+v", r)
	}
	// Final state unaffected by speculation.
	if v, _ := s.Get("k"); string(v) != "base" {
		t.Fatalf("final state = %q", v)
	}
	s.Rollback()
	if r := s.SpecExecute(get("k")); string(r.Value) != "base" {
		t.Fatalf("after rollback spec read = %+v", r)
	}
}

func TestPromoteFinalIgnoresOverlay(t *testing.T) {
	s := New()
	s.SpecExecute(put("k", "spec"))
	// Final execution runs on the previous final version only.
	if r := s.PromoteFinal(get("k")); r.OK {
		t.Fatalf("final get saw speculative write: %+v", r)
	}
}

func TestIncrCommutes(t *testing.T) {
	a := New()
	a.Apply(incr("n"))
	a.Apply(incr("n"))
	b := New()
	b.Apply(incr("n"))
	b.Apply(incr("n"))
	va, _ := a.Get("n")
	vb, _ := b.Get("n")
	if !bytes.Equal(va, vb) || Counter(va) != 2 {
		t.Fatalf("counters diverged: %v vs %v", va, vb)
	}
	// INCR must not leak the counter value in its result (that would break
	// commutativity of replies).
	if r := a.Apply(incr("n")); r.Value != nil {
		t.Fatalf("INCR returned a value: %+v", r)
	}
}

func TestIncrOnCorruptValueResets(t *testing.T) {
	s := New()
	s.Apply(put("n", "not-8-bytes"))
	s.Apply(incr("n"))
	v, _ := s.Get("n")
	if Counter(v) != 1 {
		t.Fatalf("counter = %d, want 1", Counter(v))
	}
}

func TestNoopAndUnknownOp(t *testing.T) {
	s := New()
	if r := s.Apply(types.Command{Op: types.OpNoop}); !r.OK {
		t.Fatal("noop failed")
	}
	if r := s.Apply(types.Command{Op: types.Op(99)}); r.OK {
		t.Fatal("unknown op succeeded")
	}
	if s.Len() != 0 {
		t.Fatal("noop mutated state")
	}
}

func TestResultValueIsCopied(t *testing.T) {
	s := New()
	s.Apply(put("k", "abc"))
	r := s.Apply(get("k"))
	r.Value[0] = 'X'
	r2 := s.Apply(get("k"))
	if string(r2.Value) != "abc" {
		t.Fatal("result aliases store memory")
	}
}

func TestCommandValueIsCopied(t *testing.T) {
	s := New()
	val := []byte("abc")
	s.Apply(types.Command{Op: types.OpPut, Key: "k", Value: val})
	val[0] = 'X'
	if v, _ := s.Get("k"); string(v) != "abc" {
		t.Fatal("store aliases caller memory")
	}
}

func TestDigestTracksFinalOnly(t *testing.T) {
	s := New()
	d0 := s.Digest()
	s.SpecExecute(put("k", "spec"))
	if s.Digest() != d0 {
		t.Fatal("digest changed on speculative write")
	}
	s.PromoteFinal(put("k", "v"))
	d1 := s.Digest()
	if d1 == d0 {
		t.Fatal("digest unchanged by final write")
	}
	// Same logical state → same digest, independent of history.
	o := New()
	o.PromoteFinal(put("k", "v"))
	if o.Digest() != d1 {
		t.Fatal("equal states produced different digests")
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	s.SpecExecute(get("a"))
	s.SpecExecute(get("a"))
	s.PromoteFinal(put("a", "1"))
	s.Rollback()
	f, sp, rb := s.Stats()
	if f != 1 || sp != 2 || rb != 1 {
		t.Fatalf("stats = %d,%d,%d", f, sp, rb)
	}
}

// Property: for any command sequence, executing speculatively and then
// replaying the same sequence finally after rollback yields identical
// results — the core guarantee the fast path relies on.
func TestSpecThenFinalReplayEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		cmds := make([]types.Command, n)
		for i := range cmds {
			key := fmt.Sprintf("k%d", rng.Intn(5))
			switch rng.Intn(3) {
			case 0:
				cmds[i] = get(key)
			case 1:
				cmds[i] = put(key, fmt.Sprintf("v%d", rng.Intn(100)))
			default:
				cmds[i] = incr(key)
			}
		}
		s := New()
		specResults := make([]types.Result, n)
		for i, c := range cmds {
			specResults[i] = s.SpecExecute(c)
		}
		s.Rollback()
		for i, c := range cmds {
			if r := s.PromoteFinal(c); !r.Equal(specResults[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: two stores that execute the same final sequence have equal
// digests; digests are insensitive to interleaved speculation.
func TestDigestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30)
		a, b := New(), New()
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(4))
			cmd := put(key, fmt.Sprintf("v%d", rng.Intn(50)))
			a.PromoteFinal(cmd)
			b.SpecExecute(get(key)) // extra speculation on b
			b.PromoteFinal(cmd)
		}
		b.Rollback()
		return a.Digest() == b.Digest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
