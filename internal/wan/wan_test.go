package wan

import (
	"math/rand"
	"testing"
	"time"

	"ezbft/internal/types"
)

func TestDeploymentsWellFormed(t *testing.T) {
	for _, topo := range []*Topology{DeploymentA(), DeploymentB()} {
		regions := topo.Regions()
		if len(regions) != 4 {
			t.Fatalf("%s: %d regions", topo.Name(), len(regions))
		}
		for _, a := range regions {
			for _, b := range regions {
				ow := topo.Oneway(a, b)
				if ow <= 0 {
					t.Fatalf("%s: %s-%s latency %v", topo.Name(), a, b, ow)
				}
				if ow != topo.Oneway(b, a) {
					t.Fatalf("%s: %s-%s asymmetric", topo.Name(), a, b)
				}
				if a == b && ow >= time.Millisecond {
					t.Fatalf("%s: intra-region %v too large", topo.Name(), ow)
				}
			}
		}
	}
}

// The calibration constraint from Table I: the India–Australia path must be
// the slowest in Deployment A (it determines the paper's 229 ms diagonals),
// and Virginia–Japan must be the fastest inter-region path.
func TestDeploymentACalibrationShape(t *testing.T) {
	topo := DeploymentA()
	inAU := topo.Oneway(Mumbai, Australia)
	for _, a := range topo.Regions() {
		for _, b := range topo.Regions() {
			if a == b {
				continue
			}
			if topo.Oneway(a, b) > inAU {
				t.Fatalf("%s-%s slower than Mumbai-Australia", a, b)
			}
		}
	}
	if topo.Oneway(Virginia, Japan) > topo.Oneway(Virginia, Mumbai) {
		t.Fatal("Virginia-Japan should be faster than Virginia-Mumbai")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology("x", []Region{"a", "a"}, nil, 1); err == nil {
		t.Fatal("duplicate region accepted")
	}
	if _, err := NewTopology("x", []Region{"a", "b"}, map[[2]Region]float64{}, 1); err == nil {
		t.Fatal("missing latency accepted")
	}
	if _, err := NewTopology("x", []Region{"a"}, map[[2]Region]float64{{"a", "zz"}: 3}, 1); err == nil {
		t.Fatal("unknown region in matrix accepted")
	}
	topo, err := NewTopology("x", []Region{"a", "b"}, map[[2]Region]float64{{"a", "b"}: 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Assign(types.ReplicaNode(0), "zz"); err == nil {
		t.Fatal("assignment to unknown region accepted")
	}
}

func TestDelay(t *testing.T) {
	topo := DeploymentA()
	r0, r1 := types.ReplicaNode(0), types.ReplicaNode(1)
	c0 := types.ClientNode(0)
	if err := topo.Assign(r0, Virginia); err != nil {
		t.Fatal(err)
	}
	if err := topo.Assign(r1, Japan); err != nil {
		t.Fatal(err)
	}
	if err := topo.Assign(c0, Virginia); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))

	if got := topo.Delay(r0, r1, rng); got != 77*time.Millisecond {
		t.Fatalf("VA→JP = %v, want 77ms", got)
	}
	if got := topo.Delay(r0, c0, rng); got != 500*time.Microsecond {
		t.Fatalf("intra = %v, want 0.5ms", got)
	}
	if got := topo.Delay(r0, r0, rng); got >= 500*time.Microsecond {
		t.Fatalf("self delay = %v, want < intra", got)
	}
	if r, ok := topo.RegionOf(r1); !ok || r != Japan {
		t.Fatalf("RegionOf = %v,%v", r, ok)
	}
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	topo := DeploymentA()
	_ = topo.Assign(types.ReplicaNode(0), Virginia)
	_ = topo.Assign(types.ReplicaNode(1), Japan)
	topo.SetJitter(0.05)
	base := 77 * time.Millisecond
	lo := time.Duration(float64(base) * 0.95)
	hi := time.Duration(float64(base) * 1.05)

	sample := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 100)
		for i := range out {
			out[i] = topo.Delay(types.ReplicaNode(0), types.ReplicaNode(1), rng)
		}
		return out
	}
	s1, s2 := sample(9), sample(9)
	varies := false
	for i := range s1 {
		if s1[i] < lo || s1[i] > hi {
			t.Fatalf("jittered delay %v outside [%v,%v]", s1[i], lo, hi)
		}
		if s1[i] != s2[i] {
			t.Fatal("jitter not deterministic for equal seeds")
		}
		if s1[i] != base {
			varies = true
		}
	}
	if !varies {
		t.Fatal("jitter produced no variation")
	}
}
