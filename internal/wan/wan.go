// Package wan models the paper's wide-area deployments: named geographic
// regions, one-way inter-region latencies, and the assignment of nodes to
// regions. A Topology implements the simulator's Delayer interface.
//
// Calibration: the paper never publishes its raw inter-region latencies,
// but Table I gives end-to-end Zyzzyva client latencies for every
// (primary region, client region) pair in the first deployment. The
// one-way latencies in DeploymentA were fitted so that the simulated
// protocol — including the calibrated per-request processing cost at the
// ordering replica (see internal/bench.DefaultCosts) — reproduces Table I
// (see EXPERIMENTS.md §Calibration); the fit lands within ~4% of every
// published cell. Notably the fit requires the
// India–Australia path to be the slowest (~224 ms RTT, consistent with
// 2019-era submarine routing via Singapore/Europe), which is exactly what
// makes the paper's own diagonal entries for India and Australia (229 ms)
// larger than Virginia's (198 ms).
package wan

import (
	"fmt"
	"math/rand"
	"time"

	"ezbft/internal/types"
)

// Region is a named geographic region.
type Region string

// Regions used by the paper's two deployments.
const (
	Virginia  Region = "Virginia"  // us-east-1
	Ohio      Region = "Ohio"      // us-east-2
	Japan     Region = "Japan"     // ap-northeast-1
	Mumbai    Region = "Mumbai"    // ap-south-1 (the paper's "India")
	Australia Region = "Australia" // ap-southeast-2
	Ireland   Region = "Ireland"   // eu-west-1
	Frankfurt Region = "Frankfurt" // eu-central-1
)

// Topology is a set of regions with one-way latencies plus a node→region
// assignment. The zero value is not usable; construct with NewTopology.
type Topology struct {
	name    string
	regions []Region
	index   map[Region]int
	oneway  [][]time.Duration // symmetric, indexed by region index
	intra   time.Duration     // latency within one region (client ↔ co-located replica)
	jitter  float64           // uniform ±fraction applied to every delay
	nodes   map[types.NodeID]Region
}

// NewTopology builds a topology. latenciesMS maps unordered region pairs
// (given as two-element arrays) to one-way latency in milliseconds.
func NewTopology(name string, regions []Region, latenciesMS map[[2]Region]float64, intraMS float64) (*Topology, error) {
	t := &Topology{
		name:    name,
		regions: append([]Region(nil), regions...),
		index:   make(map[Region]int, len(regions)),
		intra:   msToDur(intraMS),
		nodes:   make(map[types.NodeID]Region),
	}
	for i, r := range regions {
		if _, dup := t.index[r]; dup {
			return nil, fmt.Errorf("wan: duplicate region %s", r)
		}
		t.index[r] = i
	}
	t.oneway = make([][]time.Duration, len(regions))
	for i := range t.oneway {
		t.oneway[i] = make([]time.Duration, len(regions))
		t.oneway[i][i] = t.intra
	}
	for pair, ms := range latenciesMS {
		i, ok := t.index[pair[0]]
		if !ok {
			return nil, fmt.Errorf("wan: unknown region %s", pair[0])
		}
		j, ok := t.index[pair[1]]
		if !ok {
			return nil, fmt.Errorf("wan: unknown region %s", pair[1])
		}
		t.oneway[i][j] = msToDur(ms)
		t.oneway[j][i] = msToDur(ms)
	}
	// Every distinct pair must be specified.
	for i := range regions {
		for j := range regions {
			if i != j && t.oneway[i][j] == 0 {
				return nil, fmt.Errorf("wan: missing latency for %s-%s", regions[i], regions[j])
			}
		}
	}
	return t, nil
}

func msToDur(ms float64) time.Duration {
	return time.Duration(ms * float64(time.Millisecond))
}

// Name returns the topology's name.
func (t *Topology) Name() string { return t.name }

// Regions returns the region list in declaration order (copy).
func (t *Topology) Regions() []Region { return append([]Region(nil), t.regions...) }

// SetJitter sets the uniform ±fraction applied to every delay (0 disables).
func (t *Topology) SetJitter(frac float64) { t.jitter = frac }

// Assign places a node in a region.
func (t *Topology) Assign(node types.NodeID, r Region) error {
	if _, ok := t.index[r]; !ok {
		return fmt.Errorf("wan: unknown region %s", r)
	}
	t.nodes[node] = r
	return nil
}

// Clone returns a topology sharing the (immutable) latency matrix but with
// an independent node-placement map, so multiple deployments — the shard
// groups of a sharded simulation — can place the same node ids without
// interfering.
func (t *Topology) Clone() *Topology {
	c := *t
	c.nodes = make(map[types.NodeID]Region, len(t.nodes))
	for n, r := range t.nodes {
		c.nodes[n] = r
	}
	return &c
}

// RegionOf returns a node's region.
func (t *Topology) RegionOf(node types.NodeID) (Region, bool) {
	r, ok := t.nodes[node]
	return r, ok
}

// Oneway returns the base one-way latency between two regions.
func (t *Topology) Oneway(a, b Region) time.Duration {
	return t.oneway[t.index[a]][t.index[b]]
}

// Delay implements sim.Delayer: one-way delay between the nodes' regions
// with optional uniform jitter. Nodes in the same region use the intra
// latency; a node messaging itself pays a negligible loopback cost.
func (t *Topology) Delay(from, to types.NodeID, rng *rand.Rand) time.Duration {
	if from == to {
		return 10 * time.Microsecond
	}
	rf, ok := t.nodes[from]
	if !ok {
		return t.intra
	}
	rt, ok := t.nodes[to]
	if !ok {
		return t.intra
	}
	base := t.oneway[t.index[rf]][t.index[rt]]
	if t.jitter > 0 && rng != nil {
		f := 1 + t.jitter*(2*rng.Float64()-1)
		base = time.Duration(float64(base) * f)
	}
	return base
}

// DeploymentA is the paper's first deployment (Table I, Fig 4, Fig 6,
// Fig 7): US-East-1 (Virginia), Japan, India (Mumbai), Australia.
// One-way latencies fitted to Table I; see the package comment.
func DeploymentA() *Topology {
	t, err := NewTopology("deployment-A",
		[]Region{Virginia, Japan, Mumbai, Australia},
		map[[2]Region]float64{
			{Virginia, Japan}:     77,
			{Virginia, Mumbai}:    88,
			{Virginia, Australia}: 94,
			{Japan, Mumbai}:       57,
			{Japan, Australia}:    51,
			{Mumbai, Australia}:   107,
		}, 0.5)
	if err != nil {
		panic(err) // static tables; unreachable if the tables are well-formed
	}
	return t
}

// DeploymentB is the paper's second deployment (Fig 5): US-East-2 (Ohio),
// Ireland, Frankfurt, India (Mumbai). One-way latencies are 2019-era
// inter-region medians; unlike Deployment A these paths overlap heavily
// (transatlantic + Europe→India), which is what makes Experiment 2
// Zyzzyva's best case.
func DeploymentB() *Topology {
	t, err := NewTopology("deployment-B",
		[]Region{Ohio, Ireland, Frankfurt, Mumbai},
		map[[2]Region]float64{
			{Ohio, Ireland}:      39,
			{Ohio, Frankfurt}:    45,
			{Ohio, Mumbai}:       96,
			{Ireland, Frankfurt}: 8,
			{Ireland, Mumbai}:    56,
			{Frankfurt, Mumbai}:  51,
		}, 0.5)
	if err != nil {
		panic(err) // static tables; unreachable if the tables are well-formed
	}
	return t
}
