package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ezbft/internal/auth"
	"ezbft/internal/kvstore"
	"ezbft/internal/types"
)

// TestOpClassesMatchInterferes pins the executor's footprint interference
// classes to the protocol's interference relation: for every pair of
// non-noop operations on a shared key, opClassesInterfere must agree with
// types.Command.Interferes. (No-ops never reach the footprint machinery —
// they resolve to actNoop before scheduling.)
func TestOpClassesMatchInterferes(t *testing.T) {
	ops := []types.Op{types.OpGet, types.OpPut, types.OpIncr, types.Op(99)}
	for _, a := range ops {
		for _, b := range ops {
			ca := types.Command{Client: 1, Timestamp: 1, Op: a, Key: "k"}
			cb := types.Command{Client: 2, Timestamp: 1, Op: b, Key: "k"}
			want := ca.Interferes(cb)
			got := opClassesInterfere(opClassOf(a), opClassOf(b))
			if got != want {
				t.Errorf("opClassesInterfere(%v, %v) = %v, Interferes = %v", a, b, got, want)
			}
		}
	}
}

// execScriptStep is one step of a generated execution workload: either an
// execution pass or a commit of one batch into one space.
type execScriptStep struct {
	execute bool
	space   types.ReplicaID
	cmds    []types.Command
}

// genExecScript builds a randomized workload: batches of mixed GET/PUT/INCR
// (plus occasional no-ops) over a small key space so dependency chains and
// multi-entry closures form, duplicate commands re-committed under new
// instances so the exactly-once memo is exercised, and execution passes
// interleaved at random points.
func genExecScript(rng *rand.Rand, steps int) []execScriptStep {
	const nClients = 6
	const nSpaces = 4
	const keySpace = 5
	nextTs := make([]uint64, nClients)
	var issued []types.Command
	script := make([]execScriptStep, 0, steps)
	for i := 0; i < steps; i++ {
		if rng.Intn(4) == 0 {
			script = append(script, execScriptStep{execute: true})
			continue
		}
		batch := 1 + rng.Intn(3)
		cmds := make([]types.Command, 0, batch)
		for j := 0; j < batch; j++ {
			if len(issued) > 0 && rng.Intn(5) == 0 {
				// Duplicate: an already-issued command lands in a second
				// instance (a re-proposal after an owner change would do
				// this); the memo must keep it exactly-once.
				cmds = append(cmds, issued[rng.Intn(len(issued))])
				continue
			}
			client := types.ClientID(rng.Intn(nClients))
			nextTs[client]++
			cmd := types.Command{
				Client:    client,
				Timestamp: nextTs[client],
				Key:       fmt.Sprintf("key-%d", rng.Intn(keySpace)),
			}
			switch rng.Intn(10) {
			case 0:
				cmd.Op = types.OpNoop
				cmd.Key = ""
			case 1, 2, 3:
				cmd.Op = types.OpGet
			case 4, 5:
				cmd.Op = types.OpIncr
			default:
				cmd.Op = types.OpPut
				cmd.Value = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
			}
			issued = append(issued, cmd)
			cmds = append(cmds, cmd)
		}
		script = append(script, execScriptStep{space: types.ReplicaID(rng.Intn(nSpaces)), cmds: cmds})
	}
	return script
}

// runExecScript replays one workload on a fresh harness with the given
// worker count and returns the harness for inspection.
func runExecScript(t *testing.T, script []execScriptStep, workers int) *ExecHarness {
	t.Helper()
	h, err := NewExecHarness(ReplicaConfig{
		Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{},
		ExecWorkers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range script {
		if step.execute {
			h.Execute()
		} else {
			h.Commit(step.space, step.cmds...)
		}
	}
	h.Execute()
	if h.Pending() != 0 {
		t.Fatalf("workers=%d: %d instances still pending after drain", workers, h.Pending())
	}
	return h
}

// TestParallelExecMatchesSerialRandomized is the randomized
// linearizability-style checker: shuffled commit interleavings replay
// against the serial oracle, and the parallel executor must reproduce the
// oracle's execution log (instances, positions, commands, results, order),
// state digest, and execution count exactly, at every worker count.
func TestParallelExecMatchesSerialRandomized(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		script := genExecScript(rand.New(rand.NewSource(seed)), 120)
		oracle := runExecScript(t, script, 0)
		wantLog := oracle.ExecutedLog()
		wantDigest := oracle.Digest()
		wantExecs := oracle.Stats().FinalExecutions
		if wantExecs == 0 {
			t.Fatalf("seed %d: oracle executed nothing", seed)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			h := runExecScript(t, script, workers)
			if got := h.Stats().FinalExecutions; got != wantExecs {
				t.Errorf("seed %d workers %d: %d final executions, oracle %d", seed, workers, got, wantExecs)
			}
			if got := h.Digest(); got != wantDigest {
				t.Errorf("seed %d workers %d: digest %v, oracle %v", seed, workers, got, wantDigest)
			}
			gotLog := h.ExecutedLog()
			if !reflect.DeepEqual(gotLog, wantLog) {
				diff := len(gotLog)
				for i := range gotLog {
					if i >= len(wantLog) || !reflect.DeepEqual(gotLog[i], wantLog[i]) {
						diff = i
						break
					}
				}
				var g, w any
				if diff < len(gotLog) {
					g = gotLog[diff]
				}
				if diff < len(wantLog) {
					w = wantLog[diff]
				}
				t.Fatalf("seed %d workers %d: execution log diverges from oracle at record %d (of %d/%d)\n got %+v\nwant %+v",
					seed, workers, diff, len(gotLog), len(wantLog), g, w)
			}
			if workers > 1 {
				if h.Stats().ParallelClosures == 0 {
					t.Errorf("seed %d workers %d: parallel executor never engaged", seed, workers)
				}
			} else if h.Stats().ParallelClosures != 0 {
				t.Errorf("seed %d workers %d: parallel executor engaged on the serial path", seed, workers)
			}
		}
	}
}

// TestParallelExecExactlyOnceAcrossClosures pins the exactly-once memo
// under the parallel executor when the same command lands in two different
// closures of one execution pass: two independent entries (no dependency
// edges — a Byzantine participant lying about deps produces exactly this)
// carry the same client request; the application must execute it once, the
// second occurrence reusing the memoized result.
func TestParallelExecExactlyOnceAcrossClosures(t *testing.T) {
	store := kvstore.New()
	rep, err := NewReplica(ReplicaConfig{
		Self: 0, N: 4, App: store, Auth: auth.Noop{},
		ExecWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.exec == nil {
		t.Fatal("parallel executor not enabled")
	}
	cmd := types.Command{Client: 7, Timestamp: 1, Op: types.OpPut, Key: "dup", Value: []byte("v")}
	for i, space := range []types.ReplicaID{0, 1} {
		e := &entry{
			inst:      types.InstanceID{Space: space, Slot: 1},
			cmd:       cmd,
			cmdDigest: cmd.Digest(),
			deps:      types.NewInstanceSet(),
			seq:       types.SeqNumber(i + 1),
			status:    StatusCommitted,
		}
		rep.log.put(e)
		rep.pendingExec[e.inst] = e
	}
	rep.tryExecute(inertCtx{})
	if len(rep.pendingExec) != 0 {
		t.Fatalf("%d instances still pending", len(rep.pendingExec))
	}
	finals, _, _ := store.Stats()
	if finals != 1 {
		t.Fatalf("application executed the duplicate %d times, want exactly 1", finals)
	}
	log := rep.ExecutedLog()
	if len(log) != 2 {
		t.Fatalf("execution log has %d records, want 2", len(log))
	}
	if !log[0].Result.Equal(log[1].Result) {
		t.Fatalf("duplicate results differ: %+v vs %+v", log[0].Result, log[1].Result)
	}
}

// TestParallelExecExactlyOnceWithinClosure is the same guarantee when the
// duplicate occurrences are dependency-linked into one closure (the normal
// honest shape, since identical commands interfere): the in-pass claim set
// must route the second occurrence to the memo even though scheduling
// happens before any memo write.
func TestParallelExecExactlyOnceWithinClosure(t *testing.T) {
	store := kvstore.New()
	h, err := NewExecHarness(ReplicaConfig{
		Self: 0, N: 4, App: store, Auth: auth.Noop{},
		ExecWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cmd := types.Command{Client: 3, Timestamp: 9, Op: types.OpIncr, Key: "ctr"}
	h.Commit(0, cmd)
	h.Commit(1, cmd) // duplicate: depends on the first via the key index
	h.Execute()
	if h.Pending() != 0 {
		t.Fatalf("%d instances still pending", h.Pending())
	}
	finals, _, _ := store.Stats()
	if finals != 1 {
		t.Fatalf("application executed the duplicate %d times, want exactly 1", finals)
	}
	v, _ := store.Get("ctr")
	if got := kvstore.Counter(v); got != 1 {
		t.Fatalf("counter incremented %d times, want 1", got)
	}
}

// opaqueSpec wraps the store exposing only SpeculativeApplication.
type opaqueSpec struct{ inner *kvstore.Store }

func (o opaqueSpec) Apply(cmd types.Command) types.Result        { return o.inner.Apply(cmd) }
func (o opaqueSpec) Digest() types.Digest                        { return o.inner.Digest() }
func (o opaqueSpec) SpecExecute(cmd types.Command) types.Result  { return o.inner.SpecExecute(cmd) }
func (o opaqueSpec) Rollback()                                   { o.inner.Rollback() }
func (o opaqueSpec) PromoteFinal(cmd types.Command) types.Result { return o.inner.PromoteFinal(cmd) }

// TestParallelExecutorRequiresContract: ExecWorkers > 1 with an application
// that does not implement types.ConcurrentApplication silently keeps the
// serial path (automatic fallback for opaque apps), and worker counts 0/1
// never build the executor even with the contract present.
func TestParallelExecutorRequiresContract(t *testing.T) {
	rep, err := NewReplica(ReplicaConfig{
		Self: 0, N: 4, App: opaqueSpec{kvstore.New()}, Auth: auth.Noop{},
		ExecWorkers: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.exec != nil {
		t.Fatal("executor built for an application without the contract")
	}
	for _, w := range []int{0, 1} {
		rep, err := NewReplica(ReplicaConfig{
			Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{},
			ExecWorkers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.exec != nil {
			t.Fatalf("executor built at ExecWorkers=%d", w)
		}
	}
	if _, err := NewReplica(ReplicaConfig{
		Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{},
		ExecWorkers: -1,
	}); err == nil {
		t.Fatal("negative ExecWorkers accepted")
	}
}
