package core

import (
	"testing"

	"ezbft/internal/codec"
	"ezbft/internal/types"
)

func sampleRequest() *Request {
	return &Request{
		Cmd: types.Command{
			Client: 3, Timestamp: 7, Op: types.OpPut, Key: "k", Value: []byte("v"),
		},
		Orig: 2,
		Sig:  []byte{1, 2, 3},
	}
}

func sampleSpecOrder() *SpecOrder {
	return &SpecOrder{
		Owner:     5,
		Inst:      types.InstanceID{Space: 1, Slot: 9},
		Deps:      types.NewInstanceSet(types.InstanceID{Space: 0, Slot: 4}),
		Seq:       11,
		LogHash:   types.Digest{1},
		CmdDigest: types.Digest{2},
		Req:       *sampleRequest(),
		Sig:       []byte{9, 9},
	}
}

func sampleSpecReply() *SpecReply {
	return &SpecReply{
		Owner:     5,
		Inst:      types.InstanceID{Space: 1, Slot: 9},
		Deps:      types.NewInstanceSet(types.InstanceID{Space: 2, Slot: 1}),
		Seq:       12,
		CmdDigest: types.Digest{2},
		Client:    3,
		Timestamp: 7,
		Replica:   2,
		Result:    types.Result{OK: true, Value: []byte("out")},
		SO:        sampleSpecOrder(),
		Sig:       []byte{4},
	}
}

// roundTrip encodes and decodes a message through the codec registry.
func roundTrip(t *testing.T, m codec.Message) codec.Message {
	t.Helper()
	out, err := codec.Unmarshal(codec.Marshal(m))
	if err != nil {
		t.Fatalf("round trip of %T: %v", m, err)
	}
	return out
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []codec.Message{
		sampleRequest(),
		sampleSpecOrder(),
		sampleSpecReply(),
		&CommitFast{Client: 3, Inst: types.InstanceID{Space: 1, Slot: 9}, Cert: []*SpecReply{sampleSpecReply()}},
		&Commit{
			Client: 3, Timestamp: 7, Inst: types.InstanceID{Space: 1, Slot: 9},
			Deps: types.NewInstanceSet(types.InstanceID{Space: 0, Slot: 2}),
			Seq:  4, Cert: []*SpecReply{sampleSpecReply()}, Sig: []byte{8},
		},
		&CommitReply{Inst: types.InstanceID{Space: 1, Slot: 9}, CmdDigest: types.Digest{3}, Replica: 1, Result: types.Result{OK: true}, Sig: []byte{1}},
		&ResendReq{Req: *sampleRequest(), Replica: 2},
		&StartOwnerChange{Suspect: 1, Owner: 1, Replica: 3, Sig: []byte{5}},
		&OwnerChange{
			Suspect: 1, NewOwner: 2, Replica: 3,
			History: []HistEntry{{
				Inst: types.InstanceID{Space: 1, Slot: 1}, Status: HistSpecOrdered,
				Cmd:  types.Command{Client: 3, Timestamp: 1, Op: types.OpPut, Key: "x"},
				Deps: types.NewInstanceSet(), Seq: 1, Owner: 1, SO: sampleSpecOrder(),
			}},
			Sig: []byte{6},
		},
		&NewOwnerMsg{
			Suspect: 1, NewOwnerNum: 2, Replica: 2,
			Proof: []*OwnerChange{{Suspect: 1, NewOwner: 2, Replica: 3, Sig: []byte{6}}},
			Safe: []HistEntry{{
				Inst: types.InstanceID{Space: 1, Slot: 1}, Status: HistCommitted,
				Cmd: types.Command{Op: types.OpNoop}, Deps: types.NewInstanceSet(),
			}},
			Sig: []byte{7},
		},
		&POM{Suspect: 1, Owner: 1, Client: 3, A: sampleSpecOrder(), B: sampleSpecOrder()},
	}
	for _, m := range msgs {
		out := roundTrip(t, m)
		// Re-encode: identical bytes prove the decode captured everything.
		if string(codec.Marshal(out)) != string(codec.Marshal(m)) {
			t.Errorf("%T: round trip not byte-identical", m)
		}
	}
}

func TestSpecReplyMatchesSemantics(t *testing.T) {
	a := sampleSpecReply()
	b := sampleSpecReply()
	if !a.Matches(b) {
		t.Fatal("identical replies do not match")
	}
	b.Deps = types.NewInstanceSet() // dependency sets differ
	if a.Matches(b) {
		t.Fatal("replies with different deps matched")
	}
	b = sampleSpecReply()
	b.Result = types.Result{OK: false}
	if a.Matches(b) {
		t.Fatal("replies with different results matched")
	}
	b = sampleSpecReply()
	b.Replica = 9 // sender identity is NOT part of matching
	if !a.Matches(b) {
		t.Fatal("sender identity should not affect matching")
	}
}

func TestSignedBodyExcludesSignature(t *testing.T) {
	so := sampleSpecOrder()
	body1 := so.SignedBody()
	so.Sig = []byte{0xAA, 0xBB}
	body2 := so.SignedBody()
	if string(body1) != string(body2) {
		t.Fatal("signature bytes leaked into the signed body")
	}
	// But the instance number is covered.
	so.Inst.Slot++
	if string(so.SignedBody()) == string(body1) {
		t.Fatal("instance not covered by signature")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	full := codec.Marshal(sampleSpecReply())
	for cut := 1; cut < len(full); cut += 7 {
		if _, err := codec.Unmarshal(full[:cut]); err == nil {
			t.Fatalf("truncated message at %d accepted", cut)
		}
	}
}

func TestSlowQuorumMembers(t *testing.T) {
	got := SlowQuorumMembers(2, 4)
	want := []types.ReplicaID{2, 3, 0}
	if len(got) != len(want) {
		t.Fatalf("quorum %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quorum %v, want %v", got, want)
		}
	}
	if len(SlowQuorumMembers(0, 7)) != 5 {
		t.Fatal("2f+1 for n=7 should be 5")
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct{ n, f, fast, slow, weak int }{
		{4, 1, 4, 3, 2},
		{7, 2, 7, 5, 3},
		{10, 3, 10, 7, 4},
	}
	for _, tc := range cases {
		if F(tc.n) != tc.f || FastQuorum(tc.n) != tc.fast || SlowQuorum(tc.n) != tc.slow || WeakQuorum(tc.n) != tc.weak {
			t.Errorf("n=%d: got f=%d fast=%d slow=%d weak=%d", tc.n, F(tc.n), FastQuorum(tc.n), SlowQuorum(tc.n), WeakQuorum(tc.n))
		}
	}
}

func TestReplicaConfigValidation(t *testing.T) {
	if _, err := NewReplica(ReplicaConfig{N: 5}); err == nil {
		t.Fatal("accepted N=5")
	}
	if _, err := NewReplica(ReplicaConfig{N: 4, Self: 9}); err == nil {
		t.Fatal("accepted out-of-range self")
	}
	if _, err := NewReplica(ReplicaConfig{N: 4, Self: 0}); err == nil {
		t.Fatal("accepted nil app")
	}
	if _, err := NewClient(ClientConfig{N: 4, Leader: 9}); err == nil {
		t.Fatal("client accepted bad leader")
	}
}
