package core

import (
	"testing"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/kvstore"
	"ezbft/internal/store"
	"ezbft/internal/types"
)

// reviewCluster builds the authenticators for a bare 4-replica cluster plus
// client 0, for white-box tests that drive one replica's handlers directly.
func reviewCluster(t *testing.T) []auth.Authenticator {
	t.Helper()
	const n = 4
	nodes := make([]types.NodeID, 0, n+1)
	for i := 0; i < n; i++ {
		nodes = append(nodes, types.ReplicaNode(types.ReplicaID(i)))
	}
	nodes = append(nodes, types.ClientNode(0))
	provider, err := auth.NewProvider(auth.SchemeHMAC, nodes)
	if err != nil {
		t.Fatal(err)
	}
	auths := make([]auth.Authenticator, 0, len(nodes))
	for _, node := range nodes {
		a, err := provider.ForNode(node)
		if err != nil {
			t.Fatal(err)
		}
		auths = append(auths, a)
	}
	return auths
}

// TestTailCatchupEntryEvidence pins the tail state-transfer hardening: a
// suffix entry is adopted only when it is covered by the response's verified
// checkpoint proof or carries a leader-signed SPECORDER binding its
// commands, and responses are ignored outright unless a catch-up request is
// actually in flight. A single Byzantine responder must not be able to
// plant fabricated "committed" entries in the live log through a tail merge.
func TestTailCatchupEntryEvidence(t *testing.T) {
	const n = 4
	auths := reviewCluster(t)
	r, err := NewReplica(ReplicaConfig{Self: 0, N: n, App: kvstore.New(), Auth: auths[0], CheckpointInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := inertCtx{}
	spaces := func() []SpaceCkpt {
		out := make([]SpaceCkpt, n)
		for i := range out {
			out[i] = SpaceCkpt{Space: types.ReplicaID(i)}
		}
		return out
	}

	cmd := types.Command{Client: 0, Timestamp: 1, Op: types.OpPut, Key: "k", Value: []byte("v")}
	inst := types.InstanceID{Space: 1, Slot: 1}
	unproven := HistEntry{
		Inst:   inst,
		Status: HistCommitted,
		Cmd:    cmd,
		Deps:   types.NewInstanceSet(),
		Seq:    1,
		Owner:  1,
	}

	// A solicited tail whose "committed" entry has neither checkpoint
	// coverage (LowWater 0: no proof was verified) nor a SPECORDER: the
	// entry must be dropped, not merged into the live log.
	r.catchupPending = true
	m := &CatchupResp{Replica: 1, Tail: true, Spaces: spaces(), Suffix: []HistEntry{unproven}}
	m.Sig = signBody(auths[1], m)
	r.handleCatchupResp(ctx, m)
	if r.log.get(inst) != nil || len(r.pendingExec) != 0 {
		t.Fatal("unproven tail entry was adopted into the live log")
	}
	if r.stats.DroppedInvalid == 0 {
		t.Fatal("dropped tail entry was not counted as invalid")
	}

	// The same entry under a SPECORDER whose signature does not verify
	// against the space's leader must be dropped too.
	forged := &SpecOrder{
		Owner:     1,
		Inst:      inst,
		Deps:      types.NewInstanceSet(),
		Seq:       1,
		CmdDigest: cmd.Digest(),
		Req:       Request{Cmd: cmd},
	}
	forged.Sig = signBody(auths[2], forged) // signed by R2; space 1 is R1's
	bad := unproven
	bad.SO = forged
	r.catchupPending = true
	m = &CatchupResp{Replica: 1, Tail: true, Spaces: spaces(), Suffix: []HistEntry{bad}}
	m.Sig = signBody(auths[1], m)
	r.handleCatchupResp(ctx, m)
	if r.log.get(inst) != nil {
		t.Fatal("tail entry with a forged SPECORDER signature was adopted")
	}

	// With the genuine leader signature the entry is adopted and executes.
	so := &SpecOrder{
		Owner:     1,
		Inst:      inst,
		Deps:      types.NewInstanceSet(),
		Seq:       1,
		CmdDigest: cmd.Digest(),
		Req:       Request{Cmd: cmd},
	}
	so.Sig = signBody(auths[1], so)
	proven := unproven
	proven.SO = so
	r.catchupPending = true
	m = &CatchupResp{Replica: 1, Tail: true, Spaces: spaces(), Suffix: []HistEntry{proven}}
	m.Sig = signBody(auths[1], m)
	r.handleCatchupResp(ctx, m)
	if e := r.log.get(inst); e == nil || e.status < StatusCommitted {
		t.Fatal("leader-signed tail entry was not adopted")
	}

	// An unsolicited response is ignored even when its evidence is valid.
	cmd2 := types.Command{Client: 0, Timestamp: 2, Op: types.OpPut, Key: "k2", Value: []byte("v2")}
	inst2 := types.InstanceID{Space: 1, Slot: 2}
	so2 := &SpecOrder{
		Owner:     1,
		Inst:      inst2,
		Deps:      types.NewInstanceSet(),
		Seq:       2,
		CmdDigest: cmd2.Digest(),
		Req:       Request{Cmd: cmd2},
	}
	so2.Sig = signBody(auths[1], so2)
	h2 := HistEntry{Inst: inst2, Status: HistCommitted, Cmd: cmd2, Deps: types.NewInstanceSet(), Seq: 2, Owner: 1, SO: so2}
	m = &CatchupResp{Replica: 1, Tail: true, Spaces: spaces(), Suffix: []HistEntry{h2}}
	m.Sig = signBody(auths[1], m)
	r.handleCatchupResp(ctx, m) // catchupPending is false here
	if r.log.get(inst2) != nil {
		t.Fatal("unsolicited catch-up response was installed")
	}
}

// syncProbeStore counts records appended since the last Sync, so a test can
// observe whether anything was sent while WAL records were still volatile.
type syncProbeStore struct {
	*store.Memory
	unsynced int
}

func (s *syncProbeStore) Append(kind uint8, data []byte) (uint64, error) {
	s.unsynced++
	return s.Memory.Append(kind, data)
}

func (s *syncProbeStore) Sync() error {
	s.unsynced = 0
	return s.Memory.Sync()
}

// sendProbeCtx reports every outbound message to the test.
type sendProbeCtx struct {
	inertCtx
	onSend func(to types.NodeID, msg codec.Message)
}

func (c *sendProbeCtx) Send(to types.NodeID, msg codec.Message) { c.onSend(to, msg) }

// TestWALSyncedBeforeSend pins durability-before-dispatch: no message may
// leave the replica while WAL records appended by the current handler are
// still unsynced. On the live TCP substrate ctx.Send writes the socket
// immediately, so syncing only at handler end would let a SPECREPLY escape
// whose backing acceptance record a power loss could erase.
func TestWALSyncedBeforeSend(t *testing.T) {
	const n = 4
	auths := reviewCluster(t)
	st := &syncProbeStore{Memory: store.NewMemory()}
	r, err := NewReplica(ReplicaConfig{Self: 0, N: n, App: kvstore.New(), Auth: auths[0], Store: st, CheckpointInterval: 4})
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	ctx := &sendProbeCtx{onSend: func(to types.NodeID, msg codec.Message) {
		sent++
		if st.unsynced != 0 {
			t.Fatalf("%T sent with %d unsynced WAL records", msg, st.unsynced)
		}
	}}

	// Participant path: accepting the leader's SPECORDER appends the
	// acceptance record and replies to the client; the record must be
	// synced before the SPECREPLY leaves.
	cmd := types.Command{Client: 0, Timestamp: 1, Op: types.OpPut, Key: "k", Value: []byte("v")}
	req := Request{Cmd: cmd}
	req.Sig = signBody(auths[n], &req) // auths[n] is client 0
	so := &SpecOrder{
		Owner:     1,
		Inst:      types.InstanceID{Space: 1, Slot: 1},
		Deps:      types.NewInstanceSet(),
		Seq:       1,
		CmdDigest: cmd.Digest(),
		Req:       req,
	}
	so.Sig = signBody(auths[1], so)
	r.Receive(ctx, types.ReplicaNode(1), so)
	if sent == 0 {
		t.Fatal("acceptance produced no outbound message")
	}
	if r.Stats().WALRecords == 0 {
		t.Fatal("acceptance appended no WAL record")
	}
}
