package core

import (
	"math/rand"
	"time"

	"ezbft/internal/codec"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// ExecHarness drives one replica's final-execution machinery directly,
// bypassing the message protocol: callers install committed instances —
// with the dependency sets and sequence numbers an honest cluster would
// agree on under that arrival order — and run execution passes over them.
// It exists for the execution benchmarks (internal/bench's exec sweep) and
// the linearizability-style checkers, which need to drive the executor at
// memory speed and under controlled interleavings; protocol behaviour is
// entirely out of scope (nothing is signed, sent, or timed).
type ExecHarness struct {
	r        *Replica
	ctx      inertCtx
	nextSlot []uint64
}

// NewExecHarness builds a harness around a fresh replica. The configuration
// is validated exactly as NewReplica validates it; Auth may be auth.Noop
// since nothing is ever signed.
func NewExecHarness(cfg ReplicaConfig) (*ExecHarness, error) {
	r, err := NewReplica(cfg)
	if err != nil {
		return nil, err
	}
	h := &ExecHarness{r: r, nextSlot: make([]uint64, cfg.N)}
	for i := range h.nextSlot {
		h.nextSlot[i] = 1
	}
	return h, nil
}

// Commit installs one committed instance in the given space, batching the
// given commands, and returns its instance identifier. Dependencies and the
// sequence number are collected from the harness's dependency index — the
// agreement an honest cluster reaches when proposals arrive in Commit-call
// order. The entry is enqueued for final execution but not executed; call
// Execute to run a pass.
func (h *ExecHarness) Commit(space types.ReplicaID, cmds ...types.Command) types.InstanceID {
	r := h.r
	inst := types.InstanceID{Space: space, Slot: h.nextSlot[space]}
	h.nextSlot[space]++

	deps := types.NewInstanceSet()
	var maxSeq types.SeqNumber
	for _, cmd := range cmds {
		d, s := r.deps.collect(cmd, inst)
		deps.Union(d)
		if s > maxSeq {
			maxSeq = s
		}
	}
	seq := maxSeq + 1

	e := &entry{
		inst:      inst,
		cmd:       cmds[0],
		cmdDigest: cmds[0].Digest(),
		deps:      deps,
		seq:       seq,
		status:    StatusCommitted,
	}
	if len(cmds) > 1 {
		e.extra = append([]types.Command(nil), cmds[1:]...)
	}
	r.log.put(e)
	for _, cmd := range cmds {
		r.deps.update(inst, cmd, seq)
	}
	r.pendingExec[inst] = e
	return inst
}

// Execute runs one execution pass over everything committed so far, exactly
// as a commit arrival would trigger it.
func (h *ExecHarness) Execute() { h.r.tryExecute(h.ctx) }

// Pending returns how many committed instances still await final execution.
func (h *ExecHarness) Pending() int { return len(h.r.pendingExec) }

// ExecutedLog returns the replica's execution log (see Replica.ExecutedLog).
func (h *ExecHarness) ExecutedLog() []ExecRecord { return h.r.ExecutedLog() }

// Stats returns the replica's counters.
func (h *ExecHarness) Stats() ReplicaStats { return h.r.Stats() }

// Digest returns the application state digest.
func (h *ExecHarness) Digest() types.Digest { return h.r.cfg.App.Digest() }

// inertCtx is a do-nothing runtime context: the harness runs execution
// passes outside any runtime, so sends, timers, and virtual-time charges
// all evaporate.
type inertCtx struct{}

var _ proc.Context = inertCtx{}

func (inertCtx) Now() time.Duration                     { return 0 }
func (inertCtx) Send(types.NodeID, codec.Message)       {}
func (inertCtx) SetTimer(proc.TimerID, time.Duration)   {}
func (inertCtx) CancelTimer(proc.TimerID)               {}
func (inertCtx) Charge(time.Duration)                   {}
func (inertCtx) Rand() *rand.Rand                       { return rand.New(rand.NewSource(0)) }
