// Package core implements ezBFT (Arun, Peluso, Ravindran — ICDCS 2019), a
// leaderless Byzantine fault-tolerant state machine replication protocol.
//
// Every replica acts as command-leader for the requests its clients send it,
// ordering them in its own instance space. In the fast path a command
// commits in three client-visible communication steps: REQUEST (client →
// command-leader), SPECORDER (command-leader → replicas, with proposed
// dependencies and sequence number), and SPECREPLY (replicas speculatively
// execute and answer the client directly). The client commits the command
// with a fast decision on 3f+1 matching replies, or falls back to a slow
// path (COMMIT / COMMITREPLY, two extra steps) with a 2f+1 quorum whose
// dependency sets it combines. Dependency graphs are linearized with
// strongly connected components in inverse topological order (see
// internal/graph). Faulty command-leaders are handled by the owner-change
// protocol: their instance space is handed to the next replica and frozen.
//
// This file defines the wire messages (codec tags 10–20). Signed messages
// carry their signature separately from the body; the signature covers the
// deterministic codec encoding of the body (signedBody).
package core

import (
	"ezbft/internal/codec"
	"ezbft/internal/types"
)

// Message type tags reserved by ezBFT.
const (
	tagRequest          = 10
	tagSpecOrder        = 11
	tagSpecReply        = 12
	tagCommitFast       = 13
	tagCommit           = 14
	tagCommitReply      = 15
	tagResendReq        = 16
	tagStartOwnerChange = 17
	tagOwnerChange      = 18
	tagNewOwner         = 19
	tagPOM              = 20
)

// noOrig marks a Request that is not a retry broadcast.
const noOrig types.ReplicaID = -1

// Request is the client's signed command submission, ⟨REQUEST, L, t, c⟩σc.
// On retry broadcasts (paper step 4.3) Orig names the replica originally
// responsible, so receivers can forward a RESENDREQ to it.
type Request struct {
	Cmd  types.Command
	Orig types.ReplicaID // noOrig unless this is a retry broadcast
	Sig  []byte
}

// Tag implements codec.Message.
func (m *Request) Tag() uint8 { return tagRequest }

// MarshalTo implements codec.Message.
func (m *Request) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *Request) marshalBody(w *codec.Writer) {
	w.Command(m.Cmd)
	w.Int32(int32(m.Orig))
}

// SignedBody returns the bytes the client signature covers.
func (m *Request) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeRequest(r *codec.Reader) (*Request, error) {
	m := &Request{
		Cmd:  r.Command(),
		Orig: types.ReplicaID(r.Int32()),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// SpecOrder is the command-leader's signed ordering proposal,
// ⟨⟨SPECORDER, O, I, D, S, h, d⟩σR, m⟩.
type SpecOrder struct {
	Owner     types.OwnerNumber // owner number of the leader's instance space
	Inst      types.InstanceID
	Deps      types.InstanceSet
	Seq       types.SeqNumber
	LogHash   types.Digest // h: chained digest of the leader's instance space
	CmdDigest types.Digest // d = H(m)
	Req       Request      // the embedded client request m
	Sig       []byte       // leader signature over the body (excluding Req's own signature envelope)
}

// Tag implements codec.Message.
func (m *SpecOrder) Tag() uint8 { return tagSpecOrder }

// MarshalTo implements codec.Message.
func (m *SpecOrder) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	m.Req.MarshalTo(w)
}

func (m *SpecOrder) marshalBody(w *codec.Writer) {
	w.Uvarint(uint64(m.Owner))
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
	w.Bytes32(m.LogHash)
	w.Bytes32(m.CmdDigest)
}

// SignedBody returns the bytes the leader signature covers.
func (m *SpecOrder) SignedBody() []byte {
	w := codec.NewWriter(128)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeSpecOrder(r *codec.Reader) (*SpecOrder, error) {
	m := &SpecOrder{
		Owner:     types.OwnerNumber(r.Uvarint()),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
		LogHash:   r.Bytes32(),
		CmdDigest: r.Bytes32(),
	}
	m.Sig = r.Blob()
	req, err := decodeRequest(r)
	if err != nil {
		return nil, err
	}
	m.Req = *req
	return m, r.Err()
}

// SpecReply is a replica's signed answer to the client,
// ⟨⟨SPECREPLY, O, I, D′, S′, d, c, t⟩σR, R, rep, SO⟩.
type SpecReply struct {
	Owner     types.OwnerNumber
	Inst      types.InstanceID
	Deps      types.InstanceSet // D′: updated dependency set
	Seq       types.SeqNumber   // S′: updated sequence number
	CmdDigest types.Digest
	Client    types.ClientID
	Timestamp uint64
	Replica   types.ReplicaID
	Result    types.Result // rep: the speculative execution result
	SO        *SpecOrder   // the embedded SPECORDER (client checks for equivocation)
	Sig       []byte
}

// Tag implements codec.Message.
func (m *SpecReply) Tag() uint8 { return tagSpecReply }

// MarshalTo implements codec.Message.
func (m *SpecReply) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Bool(m.SO != nil)
	if m.SO != nil {
		m.SO.MarshalTo(w)
	}
}

func (m *SpecReply) marshalBody(w *codec.Writer) {
	w.Uvarint(uint64(m.Owner))
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
	w.Bytes32(m.CmdDigest)
	w.Int32(int32(m.Client))
	w.Uvarint(m.Timestamp)
	w.Int32(int32(m.Replica))
	w.Bool(m.Result.OK)
	w.Blob(m.Result.Value)
}

// SignedBody returns the bytes the replica signature covers.
func (m *SpecReply) SignedBody() []byte {
	w := codec.NewWriter(128)
	m.marshalBody(w)
	return w.Bytes()
}

// Matches reports whether two replies agree on every field the client
// compares for the fast-path decision (paper step 4.1): O, I, D′, S′, c, t,
// and rep.
func (m *SpecReply) Matches(o *SpecReply) bool {
	return m.Owner == o.Owner &&
		m.Inst == o.Inst &&
		m.Seq == o.Seq &&
		m.CmdDigest == o.CmdDigest &&
		m.Client == o.Client &&
		m.Timestamp == o.Timestamp &&
		m.Result.Equal(o.Result) &&
		m.Deps.Equal(o.Deps)
}

func decodeSpecReply(r *codec.Reader) (*SpecReply, error) {
	m := &SpecReply{
		Owner:     types.OwnerNumber(r.Uvarint()),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
		CmdDigest: r.Bytes32(),
		Client:    types.ClientID(r.Int32()),
		Timestamp: r.Uvarint(),
		Replica:   types.ReplicaID(r.Int32()),
	}
	m.Result.OK = r.Bool()
	m.Result.Value = r.Blob()
	m.Sig = r.Blob()
	if r.Bool() {
		so, err := decodeSpecOrder(r)
		if err != nil {
			return nil, err
		}
		m.SO = so
	}
	return m, r.Err()
}

// CommitFast is the client's asynchronous fast-path commit announcement,
// ⟨COMMITFAST, c, I, CC⟩ with CC = 3f+1 matching SPECREPLY messages.
type CommitFast struct {
	Client types.ClientID
	Inst   types.InstanceID
	Cert   []*SpecReply
}

// Tag implements codec.Message.
func (m *CommitFast) Tag() uint8 { return tagCommitFast }

// MarshalTo implements codec.Message.
func (m *CommitFast) MarshalTo(w *codec.Writer) {
	w.Int32(int32(m.Client))
	w.Instance(m.Inst)
	w.Uvarint(uint64(len(m.Cert)))
	for _, sr := range m.Cert {
		sr.MarshalTo(w)
	}
}

func decodeCommitFast(r *codec.Reader) (*CommitFast, error) {
	m := &CommitFast{
		Client: types.ClientID(r.Int32()),
		Inst:   r.Instance(),
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 64 {
		return nil, codec.ErrOverflow
	}
	m.Cert = make([]*SpecReply, 0, n)
	for i := uint64(0); i < n; i++ {
		sr, err := decodeSpecReply(r)
		if err != nil {
			return nil, err
		}
		m.Cert = append(m.Cert, sr)
	}
	return m, r.Err()
}

// Commit is the client's signed slow-path commit,
// ⟨COMMIT, c, I, D′, S′, CC⟩σc with CC = 2f+1 SPECREPLY messages.
type Commit struct {
	Client    types.ClientID
	Timestamp uint64
	Inst      types.InstanceID
	Deps      types.InstanceSet // final combined dependency set
	Seq       types.SeqNumber   // final sequence number
	Cert      []*SpecReply
	Sig       []byte
}

// Tag implements codec.Message.
func (m *Commit) Tag() uint8 { return tagCommit }

// MarshalTo implements codec.Message.
func (m *Commit) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Uvarint(uint64(len(m.Cert)))
	for _, sr := range m.Cert {
		sr.MarshalTo(w)
	}
}

func (m *Commit) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Client))
	w.Uvarint(m.Timestamp)
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
}

// SignedBody returns the bytes the client signature covers.
func (m *Commit) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCommit(r *codec.Reader) (*Commit, error) {
	m := &Commit{
		Client:    types.ClientID(r.Int32()),
		Timestamp: r.Uvarint(),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
	}
	m.Sig = r.Blob()
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 64 {
		return nil, codec.ErrOverflow
	}
	m.Cert = make([]*SpecReply, 0, n)
	for i := uint64(0); i < n; i++ {
		sr, err := decodeSpecReply(r)
		if err != nil {
			return nil, err
		}
		m.Cert = append(m.Cert, sr)
	}
	return m, r.Err()
}

// CommitReply carries the final-execution result to the client,
// ⟨COMMITREPLY, L, rep⟩.
type CommitReply struct {
	Inst      types.InstanceID
	CmdDigest types.Digest
	Replica   types.ReplicaID
	Result    types.Result
	Sig       []byte
}

// Tag implements codec.Message.
func (m *CommitReply) Tag() uint8 { return tagCommitReply }

// MarshalTo implements codec.Message.
func (m *CommitReply) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *CommitReply) marshalBody(w *codec.Writer) {
	w.Instance(m.Inst)
	w.Bytes32(m.CmdDigest)
	w.Int32(int32(m.Replica))
	w.Bool(m.Result.OK)
	w.Blob(m.Result.Value)
}

// SignedBody returns the bytes the replica signature covers.
func (m *CommitReply) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCommitReply(r *codec.Reader) (*CommitReply, error) {
	m := &CommitReply{
		Inst:      r.Instance(),
		CmdDigest: r.Bytes32(),
		Replica:   types.ReplicaID(r.Int32()),
	}
	m.Result.OK = r.Bool()
	m.Result.Value = r.Blob()
	m.Sig = r.Blob()
	return m, r.Err()
}

// ResendReq asks the original command-leader to (re-)order a request whose
// client timed out, ⟨RESENDREQ, m, R⟩ (paper step 4.3).
type ResendReq struct {
	Req     Request
	Replica types.ReplicaID // forwarding replica
}

// Tag implements codec.Message.
func (m *ResendReq) Tag() uint8 { return tagResendReq }

// MarshalTo implements codec.Message.
func (m *ResendReq) MarshalTo(w *codec.Writer) {
	m.Req.MarshalTo(w)
	w.Int32(int32(m.Replica))
}

func decodeResendReq(r *codec.Reader) (*ResendReq, error) {
	req, err := decodeRequest(r)
	if err != nil {
		return nil, err
	}
	m := &ResendReq{Req: *req, Replica: types.ReplicaID(r.Int32())}
	return m, r.Err()
}

// StartOwnerChange announces a replica's commitment to change the owner of
// a suspect's instance space, ⟨STARTOWNERCHANGE, Ri, ORi⟩.
type StartOwnerChange struct {
	Suspect types.ReplicaID
	Owner   types.OwnerNumber // the owner number being abandoned
	Replica types.ReplicaID   // sender
	Sig     []byte
}

// Tag implements codec.Message.
func (m *StartOwnerChange) Tag() uint8 { return tagStartOwnerChange }

// MarshalTo implements codec.Message.
func (m *StartOwnerChange) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *StartOwnerChange) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.Owner))
	w.Int32(int32(m.Replica))
}

// SignedBody returns the bytes the sender signature covers.
func (m *StartOwnerChange) SignedBody() []byte {
	w := codec.NewWriter(16)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeStartOwnerChange(r *codec.Reader) (*StartOwnerChange, error) {
	m := &StartOwnerChange{
		Suspect: types.ReplicaID(r.Int32()),
		Owner:   types.OwnerNumber(r.Uvarint()),
		Replica: types.ReplicaID(r.Int32()),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// HistStatus describes an entry's status inside an owner-change history.
type HistStatus uint8

// History entry statuses.
const (
	HistSpecOrdered HistStatus = iota + 1
	HistCommitted
)

// HistEntry is one instance of the suspect's space as reported in an
// OWNERCHANGE message, with the proof backing it: the leader-signed
// SPECORDER for spec-ordered (and fast-committed) entries, and the
// client-signed COMMIT for slow-committed entries.
type HistEntry struct {
	Inst         types.InstanceID
	Status       HistStatus
	Cmd          types.Command
	Deps         types.InstanceSet
	Seq          types.SeqNumber
	Owner        types.OwnerNumber
	SO           *SpecOrder // proof for HistSpecOrdered (may be nil for locally derived entries)
	ClientCommit *Commit    // proof for HistCommitted via slow path (nil for fast commits)
}

func (h *HistEntry) marshalTo(w *codec.Writer) {
	w.Instance(h.Inst)
	w.Uint8(uint8(h.Status))
	w.Command(h.Cmd)
	w.InstanceSet(h.Deps)
	w.Uvarint(uint64(h.Seq))
	w.Uvarint(uint64(h.Owner))
	w.Bool(h.SO != nil)
	if h.SO != nil {
		h.SO.MarshalTo(w)
	}
	w.Bool(h.ClientCommit != nil)
	if h.ClientCommit != nil {
		h.ClientCommit.MarshalTo(w)
	}
}

func decodeHistEntry(r *codec.Reader) (HistEntry, error) {
	h := HistEntry{
		Inst:   r.Instance(),
		Status: HistStatus(r.Uint8()),
		Cmd:    r.Command(),
		Deps:   r.InstanceSet(),
		Seq:    types.SeqNumber(r.Uvarint()),
		Owner:  types.OwnerNumber(r.Uvarint()),
	}
	if r.Bool() {
		so, err := decodeSpecOrder(r)
		if err != nil {
			return h, err
		}
		h.SO = so
	}
	if r.Bool() {
		c, err := decodeCommit(r)
		if err != nil {
			return h, err
		}
		h.ClientCommit = c
	}
	return h, r.Err()
}

// OwnerChange carries a replica's view of the suspect's instance space to
// the prospective new owner, ⟨OWNERCHANGE⟩.
type OwnerChange struct {
	Suspect  types.ReplicaID
	NewOwner types.OwnerNumber
	Replica  types.ReplicaID // sender
	History  []HistEntry
	Sig      []byte
}

// Tag implements codec.Message.
func (m *OwnerChange) Tag() uint8 { return tagOwnerChange }

// MarshalTo implements codec.Message.
func (m *OwnerChange) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *OwnerChange) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.NewOwner))
	w.Int32(int32(m.Replica))
	w.Uvarint(uint64(len(m.History)))
	for i := range m.History {
		m.History[i].marshalTo(w)
	}
}

// SignedBody returns the bytes the sender signature covers.
func (m *OwnerChange) SignedBody() []byte {
	w := codec.NewWriter(256)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeOwnerChange(r *codec.Reader) (*OwnerChange, error) {
	m := &OwnerChange{
		Suspect:  types.ReplicaID(r.Int32()),
		NewOwner: types.OwnerNumber(r.Uvarint()),
		Replica:  types.ReplicaID(r.Int32()),
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, codec.ErrOverflow
	}
	m.History = make([]HistEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := decodeHistEntry(r)
		if err != nil {
			return nil, err
		}
		m.History = append(m.History, h)
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// NewOwnerMsg announces the new owner of a frozen instance space together
// with the proof set P and the safe instances G, ⟨NEWOWNER⟩.
type NewOwnerMsg struct {
	Suspect     types.ReplicaID
	NewOwnerNum types.OwnerNumber
	Replica     types.ReplicaID // the new owner
	Proof       []*OwnerChange  // the f+1 OWNERCHANGE messages collected
	Safe        []HistEntry     // G: instances to finalize
	Sig         []byte
}

// Tag implements codec.Message.
func (m *NewOwnerMsg) Tag() uint8 { return tagNewOwner }

// MarshalTo implements codec.Message.
func (m *NewOwnerMsg) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Uvarint(uint64(len(m.Proof)))
	for _, oc := range m.Proof {
		oc.MarshalTo(w)
	}
}

func (m *NewOwnerMsg) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.NewOwnerNum))
	w.Int32(int32(m.Replica))
	w.Uvarint(uint64(len(m.Safe)))
	for i := range m.Safe {
		m.Safe[i].marshalTo(w)
	}
}

// SignedBody returns the bytes the new owner's signature covers.
func (m *NewOwnerMsg) SignedBody() []byte {
	w := codec.NewWriter(256)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeNewOwner(r *codec.Reader) (*NewOwnerMsg, error) {
	m := &NewOwnerMsg{
		Suspect:     types.ReplicaID(r.Int32()),
		NewOwnerNum: types.OwnerNumber(r.Uvarint()),
		Replica:     types.ReplicaID(r.Int32()),
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, codec.ErrOverflow
	}
	m.Safe = make([]HistEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := decodeHistEntry(r)
		if err != nil {
			return nil, err
		}
		m.Safe = append(m.Safe, h)
	}
	m.Sig = r.Blob()
	np := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if np > 64 {
		return nil, codec.ErrOverflow
	}
	m.Proof = make([]*OwnerChange, 0, np)
	for i := uint64(0); i < np; i++ {
		oc, err := decodeOwnerChange(r)
		if err != nil {
			return nil, err
		}
		m.Proof = append(m.Proof, oc)
	}
	return m, r.Err()
}

// POM is the client's proof of misbehaviour against a command-leader: two
// SPECORDER messages signed by the same owner that order the same request
// at different instances (paper step 4.4).
type POM struct {
	Suspect types.ReplicaID
	Owner   types.OwnerNumber
	Client  types.ClientID
	A, B    *SpecOrder
}

// Tag implements codec.Message.
func (m *POM) Tag() uint8 { return tagPOM }

// MarshalTo implements codec.Message.
func (m *POM) MarshalTo(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.Owner))
	w.Int32(int32(m.Client))
	m.A.MarshalTo(w)
	m.B.MarshalTo(w)
}

func decodePOM(r *codec.Reader) (*POM, error) {
	m := &POM{
		Suspect: types.ReplicaID(r.Int32()),
		Owner:   types.OwnerNumber(r.Uvarint()),
		Client:  types.ClientID(r.Int32()),
	}
	a, err := decodeSpecOrder(r)
	if err != nil {
		return nil, err
	}
	b, err := decodeSpecOrder(r)
	if err != nil {
		return nil, err
	}
	m.A, m.B = a, b
	return m, r.Err()
}

func init() {
	codec.Register(tagRequest, "ezbft.Request", func(r *codec.Reader) (codec.Message, error) { return decodeRequest(r) })
	codec.Register(tagSpecOrder, "ezbft.SpecOrder", func(r *codec.Reader) (codec.Message, error) { return decodeSpecOrder(r) })
	codec.Register(tagSpecReply, "ezbft.SpecReply", func(r *codec.Reader) (codec.Message, error) { return decodeSpecReply(r) })
	codec.Register(tagCommitFast, "ezbft.CommitFast", func(r *codec.Reader) (codec.Message, error) { return decodeCommitFast(r) })
	codec.Register(tagCommit, "ezbft.Commit", func(r *codec.Reader) (codec.Message, error) { return decodeCommit(r) })
	codec.Register(tagCommitReply, "ezbft.CommitReply", func(r *codec.Reader) (codec.Message, error) { return decodeCommitReply(r) })
	codec.Register(tagResendReq, "ezbft.ResendReq", func(r *codec.Reader) (codec.Message, error) { return decodeResendReq(r) })
	codec.Register(tagStartOwnerChange, "ezbft.StartOwnerChange", func(r *codec.Reader) (codec.Message, error) { return decodeStartOwnerChange(r) })
	codec.Register(tagOwnerChange, "ezbft.OwnerChange", func(r *codec.Reader) (codec.Message, error) { return decodeOwnerChange(r) })
	codec.Register(tagNewOwner, "ezbft.NewOwner", func(r *codec.Reader) (codec.Message, error) { return decodeNewOwner(r) })
	codec.Register(tagPOM, "ezbft.POM", func(r *codec.Reader) (codec.Message, error) { return decodePOM(r) })
}
