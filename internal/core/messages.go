// Package core implements ezBFT (Arun, Peluso, Ravindran — ICDCS 2019), a
// leaderless Byzantine fault-tolerant state machine replication protocol.
//
// Every replica acts as command-leader for the requests its clients send it,
// ordering them in its own instance space. In the fast path a command
// commits in three client-visible communication steps: REQUEST (client →
// command-leader), SPECORDER (command-leader → replicas, with proposed
// dependencies and sequence number), and SPECREPLY (replicas speculatively
// execute and answer the client directly). The client commits the command
// with a fast decision on 3f+1 matching replies, or falls back to a slow
// path (COMMIT / COMMITREPLY, two extra steps) with a 2f+1 quorum whose
// dependency sets it combines. Dependency graphs are linearized with
// strongly connected components in inverse topological order (see
// internal/graph). Faulty command-leaders are handled by the owner-change
// protocol: their instance space is handed to the next replica and frozen.
//
// # Execution determinism
//
// Final execution is deterministic on every replica regardless of the
// ExecWorkers setting. The serial path (exec.go) walks each committed
// closure's linearization directly. The parallel executor (executor.go,
// enabled by ExecWorkers > 1 with a types.ConcurrentApplication) schedules
// the same linearization as a level-ordered DAG: scheduling decisions —
// exactly-once memo hits, state-transfer base-timestamp skips, dependency
// levels, footprint conflicts — are all resolved serially in linear order
// before any worker runs; workers only compute PromoteFinal results for
// commands whose levels make them non-interfering (disjoint footprints or
// commutative per types.Command.Interferes); and all replica bookkeeping —
// the executed memo, executedTs watermarks, the execution log, entry
// statuses, checkpoint marks, commit-reply sends, and simulated cost
// charges — replays serially in linear order afterwards. Results, logs,
// reply order, and simulated timings are therefore byte-identical at any
// worker count; the full argument is in executor.go.
//
// This file defines the wire messages (codec tags 10–25). Signed messages
// carry their signature separately from the body; the signature covers the
// deterministic codec encoding of the body (signedBody).
//
// Batching (owner-side request batching): a SPECORDER may order a batch of
// client requests in a single instance. Batches of one use the original
// unbatched wire layout and tags 10–20 — byte-for-byte identical to the
// pre-batching protocol — while batches of two or more use the parallel
// "batched" tags 21–25, whose layouts extend the originals with the extra
// requests (SPECORDER), a batch index (SPECREPLY), or per-element format
// markers (POM, owner-change histories). The CmdDigest field of a batched
// SPECORDER holds the batch digest (see BatchDigest); per-command digests
// travel in the per-command SPECREPLYs.
package core

import (
	"ezbft/internal/codec"
	"ezbft/internal/engine"
	"ezbft/internal/types"
)

// Message type tags reserved by ezBFT (10–29; 30+ belong to the baseline
// protocols).
const (
	tagRequest          = 10
	tagSpecOrder        = 11
	tagSpecReply        = 12
	tagCommitFast       = 13
	tagCommit           = 14
	tagCommitReply      = 15
	tagResendReq        = 16
	tagStartOwnerChange = 17
	tagOwnerChange      = 18
	tagNewOwner         = 19
	tagPOM              = 20
	// Batched variants (batches of ≥ 2 requests per instance).
	tagSpecOrderBatch  = 21
	tagSpecReplyBatch  = 22
	tagCommitFastBatch = 23
	tagCommitBatch     = 24
	tagPOMBatch        = 25
)

// maxBatch bounds the requests decoded per SPECORDER batch.
const maxBatch = 4096

// Embedded-pointer format markers: 0 = absent, 1 = unbatched layout,
// 2 = batched layout. The unbatched values coincide with the booleans the
// pre-batching encoding wrote, keeping batch-of-one frames byte-identical.
const (
	fmtAbsent  = 0
	fmtSingle  = 1
	fmtBatched = 2
)

// noOrig marks a Request that is not a retry broadcast.
const noOrig types.ReplicaID = -1

// Request is the client's signed command submission, ⟨REQUEST, L, t, c⟩σc.
// On retry broadcasts (paper step 4.3) Orig names the replica originally
// responsible, so receivers can forward a RESENDREQ to it.
type Request struct {
	Cmd  types.Command
	Orig types.ReplicaID // noOrig unless this is a retry broadcast
	Sig  []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Clone returns a copy safe to take while other nodes' verifier pools may
// still be marking the shared original (retry broadcasts hand one decoded
// Request to every replica on the in-process mesh): the embedded Verified
// flag is re-read atomically instead of plain-copied.
func (m *Request) Clone() Request {
	cp := Request{Cmd: m.Cmd, Orig: m.Orig, Sig: m.Sig}
	if m.SigVerified() {
		cp.MarkSigVerified()
	}
	return cp
}

// Tag implements codec.Message.
func (m *Request) Tag() uint8 { return tagRequest }

// MarshalTo implements codec.Message.
func (m *Request) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *Request) marshalBody(w *codec.Writer) {
	w.Command(m.Cmd)
	w.Int32(int32(m.Orig))
}

// SignedBody returns the bytes the client signature covers.
func (m *Request) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeRequest(r *codec.Reader) (*Request, error) {
	m := &Request{
		Cmd:  r.Command(),
		Orig: types.ReplicaID(r.Int32()),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// SpecOrder is the command-leader's signed ordering proposal,
// ⟨⟨SPECORDER, O, I, D, S, h, d⟩σR, m⟩. With owner-side batching enabled it
// orders a whole batch of requests in one instance: Req is the first request
// and Batch carries the rest; d is then the batch digest, so the one leader
// signature covers every command in the batch.
type SpecOrder struct {
	Owner     types.OwnerNumber // owner number of the leader's instance space
	Inst      types.InstanceID
	Deps      types.InstanceSet
	Seq       types.SeqNumber
	LogHash   types.Digest // h: chained digest of the leader's instance space
	CmdDigest types.Digest // d = H(m) (batch digest for batches of ≥ 2)
	Req       Request      // the embedded client request m (first of the batch)
	Batch     []Request    // requests 2..k of the batch (nil when unbatched)
	Sig       []byte       // leader signature over the body (excluding Req's own signature envelope)

	// Verified marks that the leader signature and every embedded client
	// signature were checked by a transport-side verifier pool (see
	// InboundVerifier); the replica's single-threaded loop then skips those
	// checks. The digest-binding check still runs in-loop. Never marshaled.
	codec.Verified
}

// Tag implements codec.Message.
func (m *SpecOrder) Tag() uint8 {
	if len(m.Batch) > 0 {
		return tagSpecOrderBatch
	}
	return tagSpecOrder
}

// MarshalTo implements codec.Message.
func (m *SpecOrder) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	m.Req.MarshalTo(w)
	if len(m.Batch) > 0 {
		w.Uvarint(uint64(len(m.Batch)))
		for i := range m.Batch {
			m.Batch[i].MarshalTo(w)
		}
	}
}

// BatchSize returns the number of requests this SPECORDER orders.
func (m *SpecOrder) BatchSize() int { return 1 + len(m.Batch) }

// ReqAt returns the i'th request of the batch (0 = Req).
func (m *SpecOrder) ReqAt(i int) *Request {
	if i == 0 {
		return &m.Req
	}
	return &m.Batch[i-1]
}

// OrdersCommand reports whether the SPECORDER's batch embeds cmd. Plain
// byte comparison — no hashing — so clients can gate per-reply checks
// cheaply; cryptographic binding is re-checked where it matters (POM
// validation at the replicas).
func (m *SpecOrder) OrdersCommand(cmd types.Command) bool {
	for i := 0; i < m.BatchSize(); i++ {
		if m.ReqAt(i).Cmd.Equal(cmd) {
			return true
		}
	}
	return false
}

// CmdDigests returns the per-command digests of the batch, in batch order.
func (m *SpecOrder) CmdDigests() []types.Digest {
	out := make([]types.Digest, m.BatchSize())
	for i := range out {
		out[i] = m.ReqAt(i).Cmd.Digest()
	}
	return out
}

// BatchDigest computes the digest d a SPECORDER carries for a batch of
// per-command digests: the single command's digest for a batch of one
// (exactly the unbatched protocol's d = H(m)), or the hash of the
// concatenated per-command digests for larger batches, so one signature
// binds every command and its position. It is the shared engine.BatchDigest
// (every batching protocol binds batches the same way).
func BatchDigest(cmdDigests []types.Digest) types.Digest {
	return engine.BatchDigest(cmdDigests)
}

func (m *SpecOrder) marshalBody(w *codec.Writer) {
	w.Uvarint(uint64(m.Owner))
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
	w.Bytes32(m.LogHash)
	w.Bytes32(m.CmdDigest)
}

// SignedBody returns the bytes the leader signature covers.
func (m *SpecOrder) SignedBody() []byte {
	w := codec.NewWriter(128)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeSpecOrder(r *codec.Reader) (*SpecOrder, error) {
	return decodeSpecOrderFmt(r, false)
}

// decodeSpecOrderFmt parses either SPECORDER layout; batched selects the
// tag-21 layout with the trailing extra requests.
func decodeSpecOrderFmt(r *codec.Reader, batched bool) (*SpecOrder, error) {
	m := &SpecOrder{
		Owner:     types.OwnerNumber(r.Uvarint()),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
		LogHash:   r.Bytes32(),
		CmdDigest: r.Bytes32(),
	}
	m.Sig = r.Blob()
	req, err := decodeRequest(r)
	if err != nil {
		return nil, err
	}
	m.Req = *req
	if batched {
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return nil, err
		}
		// Total batch (1+n) is capped at MaxBatchSize, matching what a
		// leader may produce, so decode and verify agree at the boundary.
		if n == 0 || n > maxBatch-2 {
			return nil, codec.ErrOverflow
		}
		m.Batch = make([]Request, 0, n)
		for i := uint64(0); i < n; i++ {
			extra, err := decodeRequest(r)
			if err != nil {
				return nil, err
			}
			m.Batch = append(m.Batch, *extra)
		}
	}
	return m, r.Err()
}

// SpecReply is a replica's signed answer to the client,
// ⟨⟨SPECREPLY, O, I, D′, S′, d, c, t⟩σR, R, rep, SO⟩. For batched instances
// a replica sends one SPECREPLY per command, each naming the command's
// position in the batch (BatchIdx) and carrying the per-command digest in
// CmdDigest, so every client correlates and validates its own command.
//
// Evidence slimming: only the BatchIdx-0 reply of a batched instance embeds
// the full SPECORDER; the rest carry SORef — the batch digest of the
// proposal they vouch for — inside their signed body. Reply traffic is then
// O(k) instead of O(k²) request bytes per replica per batch, while replies
// built from different proposals still can never be combined (SORef takes
// part in Matches and in certificate validation) and any client holding two
// full SPECORDERs can still prove equivocation. Unbatched replies always
// embed the SPECORDER, byte-for-byte the paper's protocol.
type SpecReply struct {
	Owner     types.OwnerNumber
	Inst      types.InstanceID
	Deps      types.InstanceSet // D′: updated dependency set
	Seq       types.SeqNumber   // S′: updated sequence number
	CmdDigest types.Digest
	Client    types.ClientID
	Timestamp uint64
	Replica   types.ReplicaID
	Result    types.Result // rep: the speculative execution result
	Batched   bool         // true when the instance orders a batch of ≥ 2
	BatchIdx  uint32       // position of the command within the batch
	SORef     types.Digest // batch digest of the proposal (batched replies only)
	SO        *SpecOrder   // the embedded SPECORDER (BatchIdx 0 and unbatched replies)
	Sig       []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *SpecReply) Tag() uint8 {
	if m.Batched {
		return tagSpecReplyBatch
	}
	return tagSpecReply
}

// MarshalTo implements codec.Message.
func (m *SpecReply) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	marshalSpecOrderPtr(w, m.SO)
}

func (m *SpecReply) marshalBody(w *codec.Writer) {
	w.Uvarint(uint64(m.Owner))
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
	w.Bytes32(m.CmdDigest)
	w.Int32(int32(m.Client))
	w.Uvarint(m.Timestamp)
	w.Int32(int32(m.Replica))
	w.Bool(m.Result.OK)
	w.Blob(m.Result.Value)
	if m.Batched {
		// The batch index and proposal reference are part of the signed
		// body: a reply for one command of a batch cannot be replayed as a
		// reply for another, and a reply built from one proposal cannot be
		// passed off as vouching for a different batch at the same instance.
		w.Uvarint(uint64(m.BatchIdx))
		w.Bytes32(m.SORef)
	}
}

// ProposalRef returns the digest of the proposal this reply vouches for:
// the embedded SPECORDER's batch digest when present, the signed SORef
// otherwise.
func (m *SpecReply) ProposalRef() types.Digest {
	if m.SO != nil {
		return m.SO.CmdDigest
	}
	return m.SORef
}

// marshalSpecOrderPtr encodes an optional embedded SPECORDER with a format
// marker byte (absent / unbatched / batched). The unbatched markers match
// the boolean the pre-batching layout wrote.
func marshalSpecOrderPtr(w *codec.Writer, so *SpecOrder) {
	switch {
	case so == nil:
		w.Uint8(fmtAbsent)
	case len(so.Batch) > 0:
		w.Uint8(fmtBatched)
		so.MarshalTo(w)
	default:
		w.Uint8(fmtSingle)
		so.MarshalTo(w)
	}
}

// decodeSpecOrderPtr parses the counterpart of marshalSpecOrderPtr.
func decodeSpecOrderPtr(r *codec.Reader) (*SpecOrder, error) {
	switch marker := r.Uint8(); marker {
	case fmtAbsent:
		return nil, r.Err()
	case fmtSingle:
		return decodeSpecOrderFmt(r, false)
	case fmtBatched:
		return decodeSpecOrderFmt(r, true)
	default:
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, codec.ErrUnknownType
	}
}

// SignedBody returns the bytes the replica signature covers.
func (m *SpecReply) SignedBody() []byte {
	w := codec.NewWriter(128)
	m.marshalBody(w)
	return w.Bytes()
}

// Matches reports whether two replies agree on every field the client
// compares for the fast-path decision (paper step 4.1): O, I, D′, S′, c, t,
// and rep (plus the batch position, which is fixed per command anyway).
func (m *SpecReply) Matches(o *SpecReply) bool {
	return m.Owner == o.Owner &&
		m.Inst == o.Inst &&
		m.Seq == o.Seq &&
		m.CmdDigest == o.CmdDigest &&
		m.Client == o.Client &&
		m.Timestamp == o.Timestamp &&
		m.Batched == o.Batched &&
		m.BatchIdx == o.BatchIdx &&
		m.SORef == o.SORef &&
		m.Result.Equal(o.Result) &&
		m.Deps.Equal(o.Deps)
}

func decodeSpecReply(r *codec.Reader) (*SpecReply, error) {
	return decodeSpecReplyFmt(r, false)
}

func decodeSpecReplyFmt(r *codec.Reader, batched bool) (*SpecReply, error) {
	m := &SpecReply{
		Owner:     types.OwnerNumber(r.Uvarint()),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
		CmdDigest: r.Bytes32(),
		Client:    types.ClientID(r.Int32()),
		Timestamp: r.Uvarint(),
		Replica:   types.ReplicaID(r.Int32()),
	}
	m.Result.OK = r.Bool()
	m.Result.Value = r.Blob()
	if batched {
		m.Batched = true
		idx := r.Uvarint()
		if idx >= maxBatch {
			return nil, codec.ErrOverflow
		}
		m.BatchIdx = uint32(idx)
		m.SORef = r.Bytes32()
	}
	m.Sig = r.Blob()
	so, err := decodeSpecOrderPtr(r)
	if err != nil {
		return nil, err
	}
	m.SO = so
	return m, r.Err()
}

// CommitFast is the client's asynchronous fast-path commit announcement,
// ⟨COMMITFAST, c, I, CC⟩ with CC = 3f+1 matching SPECREPLY messages.
type CommitFast struct {
	Client types.ClientID
	Inst   types.InstanceID
	Cert   []*SpecReply
}

// Tag implements codec.Message.
func (m *CommitFast) Tag() uint8 {
	if certBatched(m.Cert) {
		return tagCommitFastBatch
	}
	return tagCommitFast
}

// certBatched reports whether a certificate's replies use the batched
// layout. Certificates are homogeneous: every reply vouches for the same
// command of the same instance.
func certBatched(cert []*SpecReply) bool { return len(cert) > 0 && cert[0].Batched }

// MarshalTo implements codec.Message.
func (m *CommitFast) MarshalTo(w *codec.Writer) {
	w.Int32(int32(m.Client))
	w.Instance(m.Inst)
	w.Uvarint(uint64(len(m.Cert)))
	for _, sr := range m.Cert {
		sr.MarshalTo(w)
	}
}

func decodeCommitFast(r *codec.Reader, batched bool) (*CommitFast, error) {
	m := &CommitFast{
		Client: types.ClientID(r.Int32()),
		Inst:   r.Instance(),
	}
	cert, err := decodeCert(r, batched)
	if err != nil {
		return nil, err
	}
	m.Cert = cert
	return m, r.Err()
}

// decodeCert parses a SPECREPLY certificate whose elements all use one
// layout (selected by the parent message's tag).
func decodeCert(r *codec.Reader, batched bool) ([]*SpecReply, error) {
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 64 {
		return nil, codec.ErrOverflow
	}
	cert := make([]*SpecReply, 0, n)
	for i := uint64(0); i < n; i++ {
		sr, err := decodeSpecReplyFmt(r, batched)
		if err != nil {
			return nil, err
		}
		cert = append(cert, sr)
	}
	return cert, nil
}

// Commit is the client's signed slow-path commit,
// ⟨COMMIT, c, I, D′, S′, CC⟩σc with CC = 2f+1 SPECREPLY messages.
type Commit struct {
	Client    types.ClientID
	Timestamp uint64
	Inst      types.InstanceID
	Deps      types.InstanceSet // final combined dependency set
	Seq       types.SeqNumber   // final sequence number
	Cert      []*SpecReply
	Sig       []byte

	// Verified marks the client signature and every certificate signature
	// checked; never marshaled.
	codec.Verified
}

// Tag implements codec.Message.
func (m *Commit) Tag() uint8 {
	if certBatched(m.Cert) {
		return tagCommitBatch
	}
	return tagCommit
}

// MarshalTo implements codec.Message.
func (m *Commit) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Uvarint(uint64(len(m.Cert)))
	for _, sr := range m.Cert {
		sr.MarshalTo(w)
	}
}

func (m *Commit) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Client))
	w.Uvarint(m.Timestamp)
	w.Instance(m.Inst)
	w.InstanceSet(m.Deps)
	w.Uvarint(uint64(m.Seq))
}

// SignedBody returns the bytes the client signature covers.
func (m *Commit) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCommit(r *codec.Reader, batched bool) (*Commit, error) {
	m := &Commit{
		Client:    types.ClientID(r.Int32()),
		Timestamp: r.Uvarint(),
		Inst:      r.Instance(),
		Deps:      r.InstanceSet(),
		Seq:       types.SeqNumber(r.Uvarint()),
	}
	m.Sig = r.Blob()
	cert, err := decodeCert(r, batched)
	if err != nil {
		return nil, err
	}
	m.Cert = cert
	return m, r.Err()
}

// CommitReply carries the final-execution result to the client,
// ⟨COMMITREPLY, L, rep⟩.
type CommitReply struct {
	Inst      types.InstanceID
	CmdDigest types.Digest
	Replica   types.ReplicaID
	Result    types.Result
	Sig       []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *CommitReply) Tag() uint8 { return tagCommitReply }

// MarshalTo implements codec.Message.
func (m *CommitReply) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *CommitReply) marshalBody(w *codec.Writer) {
	w.Instance(m.Inst)
	w.Bytes32(m.CmdDigest)
	w.Int32(int32(m.Replica))
	w.Bool(m.Result.OK)
	w.Blob(m.Result.Value)
}

// SignedBody returns the bytes the replica signature covers.
func (m *CommitReply) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCommitReply(r *codec.Reader) (*CommitReply, error) {
	m := &CommitReply{
		Inst:      r.Instance(),
		CmdDigest: r.Bytes32(),
		Replica:   types.ReplicaID(r.Int32()),
	}
	m.Result.OK = r.Bool()
	m.Result.Value = r.Blob()
	m.Sig = r.Blob()
	return m, r.Err()
}

// ResendReq asks the original command-leader to (re-)order a request whose
// client timed out, ⟨RESENDREQ, m, R⟩ (paper step 4.3).
type ResendReq struct {
	Req     Request
	Replica types.ReplicaID // forwarding replica
}

// Tag implements codec.Message.
func (m *ResendReq) Tag() uint8 { return tagResendReq }

// MarshalTo implements codec.Message.
func (m *ResendReq) MarshalTo(w *codec.Writer) {
	m.Req.MarshalTo(w)
	w.Int32(int32(m.Replica))
}

func decodeResendReq(r *codec.Reader) (*ResendReq, error) {
	req, err := decodeRequest(r)
	if err != nil {
		return nil, err
	}
	m := &ResendReq{Req: *req, Replica: types.ReplicaID(r.Int32())}
	return m, r.Err()
}

// StartOwnerChange announces a replica's commitment to change the owner of
// a suspect's instance space, ⟨STARTOWNERCHANGE, Ri, ORi⟩.
type StartOwnerChange struct {
	Suspect types.ReplicaID
	Owner   types.OwnerNumber // the owner number being abandoned
	Replica types.ReplicaID   // sender
	Sig     []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *StartOwnerChange) Tag() uint8 { return tagStartOwnerChange }

// MarshalTo implements codec.Message.
func (m *StartOwnerChange) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *StartOwnerChange) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.Owner))
	w.Int32(int32(m.Replica))
}

// SignedBody returns the bytes the sender signature covers.
func (m *StartOwnerChange) SignedBody() []byte {
	w := codec.NewWriter(16)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeStartOwnerChange(r *codec.Reader) (*StartOwnerChange, error) {
	m := &StartOwnerChange{
		Suspect: types.ReplicaID(r.Int32()),
		Owner:   types.OwnerNumber(r.Uvarint()),
		Replica: types.ReplicaID(r.Int32()),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// HistStatus describes an entry's status inside an owner-change history.
type HistStatus uint8

// History entry statuses.
const (
	HistSpecOrdered HistStatus = iota + 1
	HistCommitted
	// HistExecuted marks a finally executed entry inside a state-transfer
	// suffix (see checkpoint.go); it never appears in owner-change traffic.
	HistExecuted
)

// histBatchFlag marks a history entry that carries a batch of commands; it
// is OR'ed into the status byte on the wire so unbatched entries keep the
// pre-batching layout.
const histBatchFlag = 0x80

// HistEntry is one instance of the suspect's space as reported in an
// OWNERCHANGE message, with the proof backing it: the leader-signed
// SPECORDER for spec-ordered (and fast-committed) entries, and the
// client-signed COMMIT for slow-committed entries. Batched instances are
// reported — and recovered — whole: Cmd is the first command of the batch
// and Batch carries the rest, so an owner change can never split a batch.
type HistEntry struct {
	Inst         types.InstanceID
	Status       HistStatus
	Cmd          types.Command
	Batch        []types.Command // commands 2..k of a batched instance
	Deps         types.InstanceSet
	Seq          types.SeqNumber
	Owner        types.OwnerNumber
	SO           *SpecOrder // proof for HistSpecOrdered (may be nil for locally derived entries)
	ClientCommit *Commit    // proof for HistCommitted via slow path (nil for fast commits)
}

func (h *HistEntry) marshalTo(w *codec.Writer) {
	w.Instance(h.Inst)
	status := uint8(h.Status)
	if len(h.Batch) > 0 {
		status |= histBatchFlag
	}
	w.Uint8(status)
	w.Command(h.Cmd)
	w.InstanceSet(h.Deps)
	w.Uvarint(uint64(h.Seq))
	w.Uvarint(uint64(h.Owner))
	marshalSpecOrderPtr(w, h.SO)
	switch {
	case h.ClientCommit == nil:
		w.Uint8(fmtAbsent)
	case certBatched(h.ClientCommit.Cert):
		w.Uint8(fmtBatched)
		h.ClientCommit.MarshalTo(w)
	default:
		w.Uint8(fmtSingle)
		h.ClientCommit.MarshalTo(w)
	}
	if len(h.Batch) > 0 {
		w.Uvarint(uint64(len(h.Batch)))
		for _, cmd := range h.Batch {
			w.Command(cmd)
		}
	}
}

func decodeHistEntry(r *codec.Reader) (HistEntry, error) {
	h := HistEntry{Inst: r.Instance()}
	status := r.Uint8()
	batched := status&histBatchFlag != 0
	h.Status = HistStatus(status &^ histBatchFlag)
	h.Cmd = r.Command()
	h.Deps = r.InstanceSet()
	h.Seq = types.SeqNumber(r.Uvarint())
	h.Owner = types.OwnerNumber(r.Uvarint())
	so, err := decodeSpecOrderPtr(r)
	if err != nil {
		return h, err
	}
	h.SO = so
	switch marker := r.Uint8(); marker {
	case fmtAbsent:
	case fmtSingle, fmtBatched:
		c, err := decodeCommit(r, marker == fmtBatched)
		if err != nil {
			return h, err
		}
		h.ClientCommit = c
	default:
		if err := r.Err(); err != nil {
			return h, err
		}
		return h, codec.ErrUnknownType
	}
	if batched {
		n := r.Uvarint()
		if err := r.Err(); err != nil {
			return h, err
		}
		// Same total-batch cap as decodeSpecOrderFmt (1+n ≤ MaxBatchSize).
		if n == 0 || n > maxBatch-2 {
			return h, codec.ErrOverflow
		}
		h.Batch = make([]types.Command, 0, n)
		for i := uint64(0); i < n; i++ {
			h.Batch = append(h.Batch, r.Command())
		}
	}
	return h, r.Err()
}

// BatchSize returns the number of commands the entry carries.
func (h *HistEntry) BatchSize() int { return 1 + len(h.Batch) }

// CmdAt returns the i'th command of the entry (0 = Cmd).
func (h *HistEntry) CmdAt(i int) types.Command {
	if i == 0 {
		return h.Cmd
	}
	return h.Batch[i-1]
}

// OwnerChange carries a replica's view of the suspect's instance space to
// the prospective new owner, ⟨OWNERCHANGE⟩.
type OwnerChange struct {
	Suspect  types.ReplicaID
	NewOwner types.OwnerNumber
	Replica  types.ReplicaID // sender
	History  []HistEntry
	Sig      []byte

	// Verified marks the sender signature checked (history proofs are
	// validated selectively in-loop); never marshaled.
	codec.Verified
}

// Tag implements codec.Message.
func (m *OwnerChange) Tag() uint8 { return tagOwnerChange }

// MarshalTo implements codec.Message.
func (m *OwnerChange) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *OwnerChange) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.NewOwner))
	w.Int32(int32(m.Replica))
	w.Uvarint(uint64(len(m.History)))
	for i := range m.History {
		m.History[i].marshalTo(w)
	}
}

// SignedBody returns the bytes the sender signature covers.
func (m *OwnerChange) SignedBody() []byte {
	w := codec.NewWriter(256)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeOwnerChange(r *codec.Reader) (*OwnerChange, error) {
	m := &OwnerChange{
		Suspect:  types.ReplicaID(r.Int32()),
		NewOwner: types.OwnerNumber(r.Uvarint()),
		Replica:  types.ReplicaID(r.Int32()),
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, codec.ErrOverflow
	}
	m.History = make([]HistEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := decodeHistEntry(r)
		if err != nil {
			return nil, err
		}
		m.History = append(m.History, h)
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// NewOwnerMsg announces the new owner of a frozen instance space together
// with the proof set P and the safe instances G, ⟨NEWOWNER⟩.
type NewOwnerMsg struct {
	Suspect     types.ReplicaID
	NewOwnerNum types.OwnerNumber
	Replica     types.ReplicaID // the new owner
	Proof       []*OwnerChange  // the f+1 OWNERCHANGE messages collected
	Safe        []HistEntry     // G: instances to finalize
	Sig         []byte

	// Verified marks the new owner's signature checked (each proof element
	// carries its own marker); never marshaled.
	codec.Verified
}

// Tag implements codec.Message.
func (m *NewOwnerMsg) Tag() uint8 { return tagNewOwner }

// MarshalTo implements codec.Message.
func (m *NewOwnerMsg) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Uvarint(uint64(len(m.Proof)))
	for _, oc := range m.Proof {
		oc.MarshalTo(w)
	}
}

func (m *NewOwnerMsg) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.NewOwnerNum))
	w.Int32(int32(m.Replica))
	w.Uvarint(uint64(len(m.Safe)))
	for i := range m.Safe {
		m.Safe[i].marshalTo(w)
	}
}

// SignedBody returns the bytes the new owner's signature covers.
func (m *NewOwnerMsg) SignedBody() []byte {
	w := codec.NewWriter(256)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeNewOwner(r *codec.Reader) (*NewOwnerMsg, error) {
	m := &NewOwnerMsg{
		Suspect:     types.ReplicaID(r.Int32()),
		NewOwnerNum: types.OwnerNumber(r.Uvarint()),
		Replica:     types.ReplicaID(r.Int32()),
	}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 1<<16 {
		return nil, codec.ErrOverflow
	}
	m.Safe = make([]HistEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		h, err := decodeHistEntry(r)
		if err != nil {
			return nil, err
		}
		m.Safe = append(m.Safe, h)
	}
	m.Sig = r.Blob()
	np := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if np > 64 {
		return nil, codec.ErrOverflow
	}
	m.Proof = make([]*OwnerChange, 0, np)
	for i := uint64(0); i < np; i++ {
		oc, err := decodeOwnerChange(r)
		if err != nil {
			return nil, err
		}
		m.Proof = append(m.Proof, oc)
	}
	return m, r.Err()
}

// POM is the client's proof of misbehaviour against a command-leader: two
// SPECORDER messages signed by the same owner that order the same request
// at different instances (paper step 4.4).
type POM struct {
	Suspect types.ReplicaID
	Owner   types.OwnerNumber
	Client  types.ClientID
	A, B    *SpecOrder

	// Verified marks both embedded SPECORDER signatures checked against the
	// accused owner; never marshaled.
	codec.Verified
}

// Tag implements codec.Message.
func (m *POM) Tag() uint8 {
	if (m.A != nil && len(m.A.Batch) > 0) || (m.B != nil && len(m.B.Batch) > 0) {
		return tagPOMBatch
	}
	return tagPOM
}

// MarshalTo implements codec.Message.
func (m *POM) MarshalTo(w *codec.Writer) {
	w.Int32(int32(m.Suspect))
	w.Uvarint(uint64(m.Owner))
	w.Int32(int32(m.Client))
	if m.Tag() == tagPOMBatch {
		// A and B may mix layouts (an equivocating leader can sign one
		// batched and one unbatched SPECORDER), so each carries a marker.
		marshalSpecOrderPtr(w, m.A)
		marshalSpecOrderPtr(w, m.B)
		return
	}
	m.A.MarshalTo(w)
	m.B.MarshalTo(w)
}

func decodePOM(r *codec.Reader, batched bool) (*POM, error) {
	m := &POM{
		Suspect: types.ReplicaID(r.Int32()),
		Owner:   types.OwnerNumber(r.Uvarint()),
		Client:  types.ClientID(r.Int32()),
	}
	var a, b *SpecOrder
	var err error
	if batched {
		if a, err = decodeSpecOrderPtr(r); err != nil {
			return nil, err
		}
		if b, err = decodeSpecOrderPtr(r); err != nil {
			return nil, err
		}
	} else {
		if a, err = decodeSpecOrder(r); err != nil {
			return nil, err
		}
		if b, err = decodeSpecOrder(r); err != nil {
			return nil, err
		}
	}
	m.A, m.B = a, b
	return m, r.Err()
}

func init() {
	codec.Register(tagRequest, "ezbft.Request", func(r *codec.Reader) (codec.Message, error) { return decodeRequest(r) })
	codec.Register(tagSpecOrder, "ezbft.SpecOrder", func(r *codec.Reader) (codec.Message, error) { return decodeSpecOrder(r) })
	codec.Register(tagSpecReply, "ezbft.SpecReply", func(r *codec.Reader) (codec.Message, error) { return decodeSpecReply(r) })
	codec.Register(tagCommitFast, "ezbft.CommitFast", func(r *codec.Reader) (codec.Message, error) { return decodeCommitFast(r, false) })
	codec.Register(tagCommit, "ezbft.Commit", func(r *codec.Reader) (codec.Message, error) { return decodeCommit(r, false) })
	codec.Register(tagCommitReply, "ezbft.CommitReply", func(r *codec.Reader) (codec.Message, error) { return decodeCommitReply(r) })
	codec.Register(tagResendReq, "ezbft.ResendReq", func(r *codec.Reader) (codec.Message, error) { return decodeResendReq(r) })
	codec.Register(tagStartOwnerChange, "ezbft.StartOwnerChange", func(r *codec.Reader) (codec.Message, error) { return decodeStartOwnerChange(r) })
	codec.Register(tagOwnerChange, "ezbft.OwnerChange", func(r *codec.Reader) (codec.Message, error) { return decodeOwnerChange(r) })
	codec.Register(tagNewOwner, "ezbft.NewOwner", func(r *codec.Reader) (codec.Message, error) { return decodeNewOwner(r) })
	codec.Register(tagPOM, "ezbft.POM", func(r *codec.Reader) (codec.Message, error) { return decodePOM(r, false) })
	codec.Register(tagSpecOrderBatch, "ezbft.SpecOrderB", func(r *codec.Reader) (codec.Message, error) { return decodeSpecOrderFmt(r, true) })
	codec.Register(tagSpecReplyBatch, "ezbft.SpecReplyB", func(r *codec.Reader) (codec.Message, error) { return decodeSpecReplyFmt(r, true) })
	codec.Register(tagCommitFastBatch, "ezbft.CommitFastB", func(r *codec.Reader) (codec.Message, error) { return decodeCommitFast(r, true) })
	codec.Register(tagCommitBatch, "ezbft.CommitB", func(r *codec.Reader) (codec.Message, error) { return decodeCommit(r, true) })
	codec.Register(tagPOMBatch, "ezbft.POMB", func(r *codec.Reader) (codec.Message, error) { return decodePOM(r, true) })
}
