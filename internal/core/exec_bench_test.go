package core

import (
	"fmt"
	"testing"

	"ezbft/internal/auth"
	"ezbft/internal/kvstore"
	"ezbft/internal/types"
)

// stuckReplica builds a replica with `backlog` committed entries all stuck
// behind one uncommitted dependency — the shape a contended workload
// produces, where every commit arrival re-runs the tryExecute pass over
// the whole backlog without executing anything.
func stuckReplica(tb testing.TB, backlog, workers int) *Replica {
	tb.Helper()
	rep, err := NewReplica(ReplicaConfig{Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{}, ExecWorkers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	blocker := types.InstanceID{Space: 1, Slot: 1 << 20}
	prev := blocker
	for i := 1; i <= backlog; i++ {
		inst := types.InstanceID{Space: 0, Slot: uint64(i)}
		deps := types.NewInstanceSet()
		deps.Add(prev)
		prev = inst
		e := &entry{
			inst:   inst,
			cmd:    types.Command{Client: 1, Timestamp: uint64(i), Op: types.OpPut, Key: fmt.Sprint(i)},
			deps:   deps,
			seq:    types.SeqNumber(i),
			status: StatusCommitted,
		}
		rep.log.put(e)
		rep.pendingExec[inst] = e
	}
	return rep
}

// BenchmarkTryExecuteContended measures one execution pass over a stuck
// backlog of 256 committed entries — the per-commit cost on a contended
// workload. The pass-local scratch (pending order, blocked set, closure
// traversal) is replica-owned and recycled, so steady-state passes stay
// allocation-free; the benchmark's allocs/op guards that.
func BenchmarkTryExecuteContended(b *testing.B) {
	// The parallel variant pins the executor's overhead on the no-progress
	// path: a stuck pass schedules nothing, so claimedInst checks and the
	// empty flush must cost (and allocate) essentially nothing extra.
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"par8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			rep := stuckReplica(b, 256, bc.workers)
			ctx := noopCtx{}
			rep.tryExecute(ctx) // warm the scratch to steady-state capacity
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep.tryExecute(ctx)
			}
		})
	}
}

// TestTryExecuteScratchReuse pins the fix: after the first pass sizes the
// scratch, further passes over the same stuck backlog allocate (almost)
// nothing. The bound of 4 allocations leaves room for runtime noise while
// failing loudly if the per-pass pending slice, blocked set, or closure
// traversal are ever rebuilt per pass again (hundreds of allocations).
func TestTryExecuteScratchReuse(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"par8", 8}} {
		t.Run(tc.name, func(t *testing.T) {
			rep := stuckReplica(t, 256, tc.workers)
			ctx := noopCtx{}
			rep.tryExecute(ctx)
			allocs := testing.AllocsPerRun(20, func() { rep.tryExecute(ctx) })
			if allocs > 4 {
				t.Fatalf("steady-state tryExecute pass allocates %.0f times, want <= 4", allocs)
			}
		})
	}
}

// executableReplica builds a replica with n committed, mutually independent
// entries (distinct keys, empty dependency sets) at slots >= 2 of space 0.
// Slot 1 is deliberately absent, so the execution mark never advances and
// the per-slot digest chain (a sha256 each) stays out of the measurement.
func executableReplica(tb testing.TB, n, workers int) (*Replica, []*entry) {
	tb.Helper()
	rep, err := NewReplica(ReplicaConfig{Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{}, ExecWorkers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	entries := make([]*entry, n)
	for i := 0; i < n; i++ {
		inst := types.InstanceID{Space: 0, Slot: uint64(i + 2)}
		e := &entry{
			inst:   inst,
			cmd:    types.Command{Client: 1, Timestamp: uint64(i + 1), Op: types.OpPut, Key: fmt.Sprint(i)},
			deps:   types.NewInstanceSet(),
			seq:    1,
			status: StatusCommitted,
		}
		rep.log.put(e)
		rep.pendingExec[inst] = e
		entries[i] = e
	}
	return rep, entries
}

// rearm resets an executed backlog to committed so the same pass can run
// again: statuses back, pending set refilled, execution log truncated, and
// the exactly-once memo cleared (its contents would otherwise turn every
// re-run into pure memo hits). All of it is in-place map/slice reuse — no
// allocations — so it can sit inside an AllocsPerRun body.
func rearm(rep *Replica, entries []*entry) {
	for _, e := range entries {
		e.status = StatusCommitted
		rep.pendingExec[e.inst] = e
	}
	rep.execLog = rep.execLog[:0]
	clear(rep.executed)
}

// TestExecutePassScratchReuse pins the executing path: with the dependency
// graph, linearization scratch, and (for the parallel executor) the item
// and unit buffers all replica-owned and recycled, executing a 256-entry
// backlog of independent PUTs allocates almost nothing in steady state.
// nil PUT values keep the store's value copies out of the measurement. The
// parallel bound is per-command: the ConcurrentApplication contract has the
// application allocate one footprint slice per scheduled command (256
// here), plus headroom for the level-bucket goroutine machinery — the
// executor's own scratch must contribute nothing beyond that.
func TestExecutePassScratchReuse(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
		bound   float64
	}{{"serial", 0, 4}, {"par8", 8, 256 + 64}} {
		t.Run(tc.name, func(t *testing.T) {
			rep, entries := executableReplica(t, 256, tc.workers)
			ctx := noopCtx{}
			rep.tryExecute(ctx) // warm scratch, memo, and log capacity
			allocs := testing.AllocsPerRun(20, func() {
				rearm(rep, entries)
				rep.tryExecute(ctx)
			})
			if len(rep.execLog) != 256 {
				t.Fatalf("pass executed %d entries, want 256", len(rep.execLog))
			}
			if allocs > tc.bound {
				t.Fatalf("steady-state executing pass allocates %.0f times, want <= %.0f", allocs, tc.bound)
			}
		})
	}
}

// BenchmarkExecutePass measures a full execution pass over a 256-entry
// backlog of independent commands — the throughput case the parallel
// executor targets. Each iteration re-arms the backlog in place; the re-arm
// is identical across variants, so serial-vs-parallel deltas isolate the
// executor. (On a single-CPU host the parallel variant only measures
// scheduling overhead; speedups need GOMAXPROCS > 1.)
func BenchmarkExecutePass(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 0}, {"par2", 2}, {"par8", 8}} {
		b.Run(bc.name, func(b *testing.B) {
			rep, entries := executableReplica(b, 256, bc.workers)
			ctx := noopCtx{}
			rep.tryExecute(ctx)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rearm(rep, entries)
				rep.tryExecute(ctx)
			}
		})
	}
}
