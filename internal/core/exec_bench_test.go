package core

import (
	"fmt"
	"testing"

	"ezbft/internal/auth"
	"ezbft/internal/kvstore"
	"ezbft/internal/types"
)

// stuckReplica builds a replica with `backlog` committed entries all stuck
// behind one uncommitted dependency — the shape a contended workload
// produces, where every commit arrival re-runs the tryExecute pass over
// the whole backlog without executing anything.
func stuckReplica(tb testing.TB, backlog int) *Replica {
	tb.Helper()
	rep, err := NewReplica(ReplicaConfig{Self: 0, N: 4, App: kvstore.New(), Auth: auth.Noop{}})
	if err != nil {
		tb.Fatal(err)
	}
	blocker := types.InstanceID{Space: 1, Slot: 1 << 20}
	prev := blocker
	for i := 1; i <= backlog; i++ {
		inst := types.InstanceID{Space: 0, Slot: uint64(i)}
		deps := types.NewInstanceSet()
		deps.Add(prev)
		prev = inst
		e := &entry{
			inst:   inst,
			cmd:    types.Command{Client: 1, Timestamp: uint64(i), Op: types.OpPut, Key: fmt.Sprint(i)},
			deps:   deps,
			seq:    types.SeqNumber(i),
			status: StatusCommitted,
		}
		rep.log.put(e)
		rep.pendingExec[inst] = e
	}
	return rep
}

// BenchmarkTryExecuteContended measures one execution pass over a stuck
// backlog of 256 committed entries — the per-commit cost on a contended
// workload. The pass-local scratch (pending order, blocked set, closure
// traversal) is replica-owned and recycled, so steady-state passes stay
// allocation-free; the benchmark's allocs/op guards that.
func BenchmarkTryExecuteContended(b *testing.B) {
	rep := stuckReplica(b, 256)
	ctx := noopCtx{}
	rep.tryExecute(ctx) // warm the scratch to steady-state capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep.tryExecute(ctx)
	}
}

// TestTryExecuteScratchReuse pins the fix: after the first pass sizes the
// scratch, further passes over the same stuck backlog allocate (almost)
// nothing. The bound of 4 allocations leaves room for runtime noise while
// failing loudly if the per-pass pending slice, blocked set, or closure
// traversal are ever rebuilt per pass again (hundreds of allocations).
func TestTryExecuteScratchReuse(t *testing.T) {
	rep := stuckReplica(t, 256)
	ctx := noopCtx{}
	rep.tryExecute(ctx)
	allocs := testing.AllocsPerRun(20, func() { rep.tryExecute(ctx) })
	if allocs > 4 {
		t.Fatalf("steady-state tryExecute pass allocates %.0f times, want <= 4", allocs)
	}
}
