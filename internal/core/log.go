package core

import (
	"crypto/sha256"

	"ezbft/internal/types"
)

// Status tracks a command's progress through the protocol at one replica.
type Status uint8

// Command statuses (monotonically increasing).
const (
	StatusNone        Status = iota
	StatusSpecOrdered        // spec-ordered and speculatively executed
	StatusCommitted          // final dependencies and sequence number fixed
	StatusExecuted           // finally executed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusSpecOrdered:
		return "spec-ordered"
	case StatusCommitted:
		return "committed"
	case StatusExecuted:
		return "executed"
	default:
		return "invalid"
	}
}

// entry is one slot of one instance space in a replica's command log. With
// owner-side batching one entry may order a whole batch of commands: cmd,
// specResult, and finalResult describe the first command (the only one when
// unbatched), and the extra* slices carry commands 2..k. The entry-level
// protocol state (deps, seq, status) is shared by the batch — the batch
// commits and executes as a unit, commands in batch order.
type entry struct {
	inst      types.InstanceID
	owner     types.OwnerNumber
	cmd       types.Command   // first command of the batch
	extra     []types.Command // commands 2..k (nil when unbatched)
	cmdDigest types.Digest    // batch digest (= cmd's digest when unbatched)
	// cmdDigests caches every per-command digest for batched entries
	// (len == nCmds); nil when unbatched (cmdDigest covers the one command).
	cmdDigests []types.Digest
	deps       types.InstanceSet
	seq        types.SeqNumber
	status     Status

	specExecuted bool
	specResult   types.Result   // first command's speculative result
	finalResult  types.Result   // first command's final result
	extraSpec    []types.Result // speculative results for commands 2..k
	extraFinal   []types.Result // final results for commands 2..k

	// so retains the (signed) SPECORDER that introduced this entry; it is
	// the proof carried in owner-change histories and retransmitted on
	// RESENDREQ.
	so *SpecOrder
	// clientCommit retains the client-signed COMMIT for slow-path commits;
	// it is the Condition-1 proof in owner-change histories.
	clientCommit *Commit

	// commitReplyTo records, per batch position, the slow-path client to
	// answer after final execution (nil until a COMMIT arrives).
	commitReplyTo map[int]types.ClientID
}

// nCmds returns the number of commands the entry orders.
func (e *entry) nCmds() int { return 1 + len(e.extra) }

// cmdAt returns the i'th command of the batch (0 = cmd).
func (e *entry) cmdAt(i int) types.Command {
	if i == 0 {
		return e.cmd
	}
	return e.extra[i-1]
}

// digestAt returns the i'th command's digest, from the cache when batched.
func (e *entry) digestAt(i int) types.Digest {
	if e.cmdDigests == nil {
		return e.cmdDigest
	}
	return e.cmdDigests[i]
}

// cmdIndex returns the batch position of the command issued by (client, ts),
// or -1 if the entry does not order it.
func (e *entry) cmdIndex(client types.ClientID, ts uint64) int {
	if e.cmd.Client == client && e.cmd.Timestamp == ts {
		return 0
	}
	for i, cmd := range e.extra {
		if cmd.Client == client && cmd.Timestamp == ts {
			return i + 1
		}
	}
	return -1
}

// specResultAt returns the i'th command's speculative result.
func (e *entry) specResultAt(i int) types.Result {
	if i == 0 {
		return e.specResult
	}
	return e.extraSpec[i-1]
}

// setSpecResult records the i'th command's speculative result.
func (e *entry) setSpecResult(i int, res types.Result) {
	if i == 0 {
		e.specResult = res
		return
	}
	if e.extraSpec == nil {
		e.extraSpec = make([]types.Result, len(e.extra))
	}
	e.extraSpec[i-1] = res
}

// finalResultAt returns the i'th command's final result. Batched entries
// installed by a state transfer carry no per-command results (the suffix
// ships commands, not results); their positions read as the zero Result.
func (e *entry) finalResultAt(i int) types.Result {
	if i == 0 {
		return e.finalResult
	}
	if e.extraFinal == nil {
		return types.Result{}
	}
	return e.extraFinal[i-1]
}

// setFinalResult records the i'th command's final result.
func (e *entry) setFinalResult(i int, res types.Result) {
	if i == 0 {
		e.finalResult = res
		return
	}
	if e.extraFinal == nil {
		e.extraFinal = make([]types.Result, len(e.extra))
	}
	e.extraFinal[i-1] = res
}

// needCommitReply records a slow-path client to answer after the i'th
// command finally executes.
func (e *entry) needCommitReply(i int, to types.ClientID) {
	if e.commitReplyTo == nil {
		e.commitReplyTo = make(map[int]types.ClientID, 1)
	}
	e.commitReplyTo[i] = to
}

// space is one replica's view of one instance space.
type space struct {
	entries map[uint64]*entry
	maxSlot uint64
	// pending buffers out-of-order SPECORDERs until their slot is next.
	pending map[uint64]*SpecOrder
	// logHash is the chained digest h of the accepted prefix.
	logHash types.Digest
	// suspended is set when this replica commits to an owner change for
	// the space: it stops participating (paper §IV-E) until the NEWOWNER
	// message freezes the space for good.
	suspended bool
	frozen    bool

	// Log-lifecycle state (checkpointing / garbage collection; see
	// checkpoint.go). execMark is the contiguously finally-executed prefix:
	// slots 1..execMark all have status Executed locally. execDigest chains
	// the committed batch digests of that prefix in slot order — the
	// deterministic per-space digest CHECKPOINT votes agree on (the
	// committed content of every slot is agreed, so equal marks imply equal
	// digests at correct replicas). lowWater is the latest *stable* mark
	// (2f+1 replicas vouched they executed through it); truncated is how far
	// entries have actually been freed locally (truncated ≤ lowWater and
	// ≤ execMark — a replica never frees state it has not executed).
	execMark   uint64
	execDigest types.Digest
	lowWater   uint64
	truncated  uint64
}

func newSpace() *space {
	return &space{
		entries: make(map[uint64]*entry),
		pending: make(map[uint64]*SpecOrder),
	}
}

// extendHash chains a new instance into the space digest.
func (s *space) extendHash(inst types.InstanceID, d types.Digest) {
	h := sha256.New()
	h.Write(s.logHash[:])
	var buf [12]byte
	buf[0] = byte(uint32(inst.Space) >> 24)
	buf[1] = byte(uint32(inst.Space) >> 16)
	buf[2] = byte(uint32(inst.Space) >> 8)
	buf[3] = byte(uint32(inst.Space))
	for i := 0; i < 8; i++ {
		buf[4+i] = byte(inst.Slot >> (56 - 8*i))
	}
	h.Write(buf[:])
	h.Write(d[:])
	copy(s.logHash[:], h.Sum(nil))
}

// cmdLog is a replica's full command log: one space per replica.
type cmdLog struct {
	n      int
	spaces []*space
}

func newCmdLog(n int) *cmdLog {
	l := &cmdLog{n: n, spaces: make([]*space, n)}
	for i := range l.spaces {
		l.spaces[i] = newSpace()
	}
	return l
}

func (l *cmdLog) space(r types.ReplicaID) *space { return l.spaces[r] }

// get returns the entry at inst, or nil.
func (l *cmdLog) get(inst types.InstanceID) *entry {
	return l.spaces[inst.Space].entries[inst.Slot]
}

// put inserts an entry, updating the space's high-water mark.
func (l *cmdLog) put(e *entry) {
	sp := l.spaces[e.inst.Space]
	sp.entries[e.inst.Slot] = e
	if e.inst.Slot > sp.maxSlot {
		sp.maxSlot = e.inst.Slot
	}
}

// entryCount returns the total number of retained log entries across all
// spaces (inspection/soak-test helper).
func (l *cmdLog) entryCount() int {
	n := 0
	for _, sp := range l.spaces {
		n += len(sp.entries)
	}
	return n
}

// prune invalidates every latest-instance reference into `space` at slots
// ≤ limit. Safe only for slots this replica has finally executed: its own
// future dependency collection no longer needs them (interfering commands
// were already ordered after them locally), and other replicas contribute
// their own views through the per-replica dependency union, so no ordering
// information is lost cluster-wide.
func (d *depIndex) prune(space types.ReplicaID, limit uint64) {
	for key, ki := range d.byKey {
		cl, ok := ki.perSpace[space]
		if !ok {
			continue
		}
		for _, ref := range []*latestRef{&cl.get, &cl.put, &cl.incr} {
			if ref.valid && ref.inst.Space == space && ref.inst.Slot <= limit {
				*ref = latestRef{}
			}
		}
		if !cl.get.valid && !cl.put.valid && !cl.incr.valid {
			delete(ki.perSpace, space)
		}
		if len(ki.perSpace) == 0 {
			delete(d.byKey, key)
		}
	}
}

// size returns the number of live latest-instance references (soak-test
// observable).
func (d *depIndex) size() int {
	n := 0
	for _, ki := range d.byKey {
		for _, cl := range ki.perSpace {
			for _, ref := range []latestRef{cl.get, cl.put, cl.incr} {
				if ref.valid {
					n++
				}
			}
		}
	}
	return n
}

// depIndex answers "which instances interfere with this command?" in O(1)
// per instance space: it tracks, per key and per space, the latest instance
// of each operation class. This is transitively complete: commands on the
// same key in the same space form dependency chains, so the latest
// interfering instance per space transitively covers all earlier ones (the
// EPaxos optimization, applied per operation class because GETs do not
// interfere with GETs nor INCRs with INCRs).
type depIndex struct {
	byKey map[string]*keyIndex
}

// keyIndex tracks the latest instance per (space, op-class) for one key.
type keyIndex struct {
	perSpace map[types.ReplicaID]*classLatest
}

type classLatest struct {
	get, put, incr latestRef
}

type latestRef struct {
	valid bool
	inst  types.InstanceID
	seq   types.SeqNumber
}

func newDepIndex() *depIndex {
	return &depIndex{byKey: make(map[string]*keyIndex)}
}

// collect returns the dependency set for cmd (excluding `exclude`) and the
// largest sequence number among the dependencies.
func (d *depIndex) collect(cmd types.Command, exclude types.InstanceID) (types.InstanceSet, types.SeqNumber) {
	deps := types.NewInstanceSet()
	var maxSeq types.SeqNumber
	if cmd.Op == types.OpNoop {
		return deps, 0
	}
	ki, ok := d.byKey[cmd.Key]
	if !ok {
		return deps, 0
	}
	for _, cl := range ki.perSpace {
		for _, ref := range cl.interfering(cmd.Op) {
			if !ref.valid || ref.inst == exclude {
				continue
			}
			deps.Add(ref.inst)
			if ref.seq > maxSeq {
				maxSeq = ref.seq
			}
		}
	}
	return deps, maxSeq
}

// interfering returns the class slots whose latest instance interferes with
// an operation of class op.
func (c *classLatest) interfering(op types.Op) []latestRef {
	switch op {
	case types.OpGet:
		return []latestRef{c.put, c.incr}
	case types.OpPut:
		return []latestRef{c.get, c.put, c.incr}
	case types.OpIncr:
		return []latestRef{c.get, c.put}
	default:
		return nil
	}
}

// update records an instance as the latest of its class for its key and
// space. Seq-only updates (commit raising the sequence number) pass the
// same instance again with the new seq.
func (d *depIndex) update(inst types.InstanceID, cmd types.Command, seq types.SeqNumber) {
	if cmd.Op == types.OpNoop {
		return
	}
	ki, ok := d.byKey[cmd.Key]
	if !ok {
		ki = &keyIndex{perSpace: make(map[types.ReplicaID]*classLatest)}
		d.byKey[cmd.Key] = ki
	}
	cl, ok := ki.perSpace[inst.Space]
	if !ok {
		cl = &classLatest{}
		ki.perSpace[inst.Space] = cl
	}
	var ref *latestRef
	switch cmd.Op {
	case types.OpGet:
		ref = &cl.get
	case types.OpPut:
		ref = &cl.put
	case types.OpIncr:
		ref = &cl.incr
	default:
		return
	}
	// Later slots supersede; same slot updates seq in place.
	if !ref.valid || inst.Slot > ref.inst.Slot {
		*ref = latestRef{valid: true, inst: inst, seq: seq}
	} else if inst == ref.inst && seq > ref.seq {
		ref.seq = seq
	}
}
