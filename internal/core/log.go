package core

import (
	"crypto/sha256"

	"ezbft/internal/types"
)

// Status tracks a command's progress through the protocol at one replica.
type Status uint8

// Command statuses (monotonically increasing).
const (
	StatusNone        Status = iota
	StatusSpecOrdered        // spec-ordered and speculatively executed
	StatusCommitted          // final dependencies and sequence number fixed
	StatusExecuted           // finally executed
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusNone:
		return "none"
	case StatusSpecOrdered:
		return "spec-ordered"
	case StatusCommitted:
		return "committed"
	case StatusExecuted:
		return "executed"
	default:
		return "invalid"
	}
}

// entry is one slot of one instance space in a replica's command log.
type entry struct {
	inst      types.InstanceID
	owner     types.OwnerNumber
	cmd       types.Command
	cmdDigest types.Digest
	deps      types.InstanceSet
	seq       types.SeqNumber
	status    Status

	specExecuted bool
	specResult   types.Result
	finalResult  types.Result

	// so retains the (signed) SPECORDER that introduced this entry; it is
	// the proof carried in owner-change histories and retransmitted on
	// RESENDREQ.
	so *SpecOrder
	// clientCommit retains the client-signed COMMIT for slow-path commits;
	// it is the Condition-1 proof in owner-change histories.
	clientCommit *Commit

	// needsCommitReply records the slow-path client to answer after final
	// execution.
	needsCommitReply bool
	replyTo          types.ClientID
}

// space is one replica's view of one instance space.
type space struct {
	entries map[uint64]*entry
	maxSlot uint64
	// pending buffers out-of-order SPECORDERs until their slot is next.
	pending map[uint64]*SpecOrder
	// logHash is the chained digest h of the accepted prefix.
	logHash types.Digest
	// suspended is set when this replica commits to an owner change for
	// the space: it stops participating (paper §IV-E) until the NEWOWNER
	// message freezes the space for good.
	suspended bool
	frozen    bool
}

func newSpace() *space {
	return &space{
		entries: make(map[uint64]*entry),
		pending: make(map[uint64]*SpecOrder),
	}
}

// extendHash chains a new instance into the space digest.
func (s *space) extendHash(inst types.InstanceID, d types.Digest) {
	h := sha256.New()
	h.Write(s.logHash[:])
	var buf [12]byte
	buf[0] = byte(uint32(inst.Space) >> 24)
	buf[1] = byte(uint32(inst.Space) >> 16)
	buf[2] = byte(uint32(inst.Space) >> 8)
	buf[3] = byte(uint32(inst.Space))
	for i := 0; i < 8; i++ {
		buf[4+i] = byte(inst.Slot >> (56 - 8*i))
	}
	h.Write(buf[:])
	h.Write(d[:])
	copy(s.logHash[:], h.Sum(nil))
}

// cmdLog is a replica's full command log: one space per replica.
type cmdLog struct {
	n      int
	spaces []*space
}

func newCmdLog(n int) *cmdLog {
	l := &cmdLog{n: n, spaces: make([]*space, n)}
	for i := range l.spaces {
		l.spaces[i] = newSpace()
	}
	return l
}

func (l *cmdLog) space(r types.ReplicaID) *space { return l.spaces[r] }

// get returns the entry at inst, or nil.
func (l *cmdLog) get(inst types.InstanceID) *entry {
	return l.spaces[inst.Space].entries[inst.Slot]
}

// put inserts an entry, updating the space's high-water mark.
func (l *cmdLog) put(e *entry) {
	sp := l.spaces[e.inst.Space]
	sp.entries[e.inst.Slot] = e
	if e.inst.Slot > sp.maxSlot {
		sp.maxSlot = e.inst.Slot
	}
}

// depIndex answers "which instances interfere with this command?" in O(1)
// per instance space: it tracks, per key and per space, the latest instance
// of each operation class. This is transitively complete: commands on the
// same key in the same space form dependency chains, so the latest
// interfering instance per space transitively covers all earlier ones (the
// EPaxos optimization, applied per operation class because GETs do not
// interfere with GETs nor INCRs with INCRs).
type depIndex struct {
	byKey map[string]*keyIndex
}

// keyIndex tracks the latest instance per (space, op-class) for one key.
type keyIndex struct {
	perSpace map[types.ReplicaID]*classLatest
}

type classLatest struct {
	get, put, incr latestRef
}

type latestRef struct {
	valid bool
	inst  types.InstanceID
	seq   types.SeqNumber
}

func newDepIndex() *depIndex {
	return &depIndex{byKey: make(map[string]*keyIndex)}
}

// collect returns the dependency set for cmd (excluding `exclude`) and the
// largest sequence number among the dependencies.
func (d *depIndex) collect(cmd types.Command, exclude types.InstanceID) (types.InstanceSet, types.SeqNumber) {
	deps := types.NewInstanceSet()
	var maxSeq types.SeqNumber
	if cmd.Op == types.OpNoop {
		return deps, 0
	}
	ki, ok := d.byKey[cmd.Key]
	if !ok {
		return deps, 0
	}
	for _, cl := range ki.perSpace {
		for _, ref := range cl.interfering(cmd.Op) {
			if !ref.valid || ref.inst == exclude {
				continue
			}
			deps.Add(ref.inst)
			if ref.seq > maxSeq {
				maxSeq = ref.seq
			}
		}
	}
	return deps, maxSeq
}

// interfering returns the class slots whose latest instance interferes with
// an operation of class op.
func (c *classLatest) interfering(op types.Op) []latestRef {
	switch op {
	case types.OpGet:
		return []latestRef{c.put, c.incr}
	case types.OpPut:
		return []latestRef{c.get, c.put, c.incr}
	case types.OpIncr:
		return []latestRef{c.get, c.put}
	default:
		return nil
	}
}

// update records an instance as the latest of its class for its key and
// space. Seq-only updates (commit raising the sequence number) pass the
// same instance again with the new seq.
func (d *depIndex) update(inst types.InstanceID, cmd types.Command, seq types.SeqNumber) {
	if cmd.Op == types.OpNoop {
		return
	}
	ki, ok := d.byKey[cmd.Key]
	if !ok {
		ki = &keyIndex{perSpace: make(map[types.ReplicaID]*classLatest)}
		d.byKey[cmd.Key] = ki
	}
	cl, ok := ki.perSpace[inst.Space]
	if !ok {
		cl = &classLatest{}
		ki.perSpace[inst.Space] = cl
	}
	var ref *latestRef
	switch cmd.Op {
	case types.OpGet:
		ref = &cl.get
	case types.OpPut:
		ref = &cl.put
	case types.OpIncr:
		ref = &cl.incr
	default:
		return
	}
	// Later slots supersede; same slot updates seq in place.
	if !ref.valid || inst.Slot > ref.inst.Slot {
		*ref = latestRef{valid: true, inst: inst, seq: seq}
	} else if inst == ref.inst && seq > ref.seq {
		ref.seq = seq
	}
}
