package core

import (
	"testing"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/kvstore"
	"ezbft/internal/types"
)

// pvRig builds the signing material and a fresh replica for equivalence
// checks between the transport-side pre-verifier and in-loop verification.
type pvRig struct {
	t    *testing.T
	ring *auth.HMACKeyring
	n    int
}

func newPVRig(t *testing.T) *pvRig {
	return &pvRig{t: t, ring: auth.NewHMACKeyring([]byte("preverify-equivalence")), n: 4}
}

func (r *pvRig) replicaAuth(id types.ReplicaID) auth.Authenticator {
	return r.ring.ForNode(types.ReplicaNode(id))
}

func (r *pvRig) clientAuth(id types.ClientID) auth.Authenticator {
	return r.ring.ForNode(types.ClientNode(id))
}

func (r *pvRig) freshReplica(self types.ReplicaID) *Replica {
	rep, err := NewReplica(ReplicaConfig{
		Self: self, N: r.n, App: kvstore.New(), Auth: r.replicaAuth(self),
	})
	if err != nil {
		r.t.Fatal(err)
	}
	return rep
}

// request builds a signed REQUEST from client 5 for leader 1.
func (r *pvRig) request(ts uint64) *Request {
	req := &Request{Cmd: types.Command{Client: 5, Timestamp: ts, Op: types.OpPut, Key: "k", Value: []byte("v")}, Orig: noOrig}
	req.Sig = signBody(r.clientAuth(5), req)
	return req
}

// specOrder builds replica 1's signed first proposal embedding a fresh
// request.
func (r *pvRig) specOrder() *SpecOrder {
	req := r.request(1)
	so := &SpecOrder{
		Owner: 1,
		Inst:  types.InstanceID{Space: 1, Slot: 1},
		Deps:  types.NewInstanceSet(),
		Seq:   1,
		Req:   *req,
	}
	so.CmdDigest = BatchDigest(so.CmdDigests())
	sp := newCmdLog(r.n).space(1)
	sp.extendHash(so.Inst, so.CmdDigest)
	so.LogHash = sp.logHash
	so.Sig = signBody(r.replicaAuth(1), so)
	return so
}

// specReply builds `from`'s signed reply for the given proposal.
func (r *pvRig) specReply(from types.ReplicaID, so *SpecOrder) *SpecReply {
	sr := &SpecReply{
		Owner:     so.Owner,
		Inst:      so.Inst,
		Deps:      so.Deps.Clone(),
		Seq:       so.Seq,
		CmdDigest: so.Req.Cmd.Digest(),
		Client:    so.Req.Cmd.Client,
		Timestamp: so.Req.Cmd.Timestamp,
		Replica:   from,
		Result:    types.Result{OK: true},
		SO:        so,
	}
	sr.Sig = signBody(r.replicaAuth(from), sr)
	return sr
}

// commit builds client 5's signed slow-path COMMIT with a 2f+1 certificate.
func (r *pvRig) commit() *Commit {
	so := r.specOrder()
	cert := []*SpecReply{r.specReply(0, so), r.specReply(1, so), r.specReply(2, so)}
	c := &Commit{
		Client:    5,
		Timestamp: so.Req.Cmd.Timestamp,
		Inst:      so.Inst,
		Deps:      so.Deps.Clone(),
		Seq:       so.Seq,
		Cert:      cert,
	}
	c.Sig = signBody(r.clientAuth(5), c)
	return c
}

// startOwnerChange builds replica 2's signed vote against replica 1.
func (r *pvRig) startOwnerChange() *StartOwnerChange {
	m := &StartOwnerChange{Suspect: 1, Owner: 1, Replica: 2}
	m.Sig = signBody(r.replicaAuth(2), m)
	return m
}

// pom builds a valid proof of misbehaviour: replica 1 signs the same
// request at two instances.
func (r *pvRig) pom() *POM {
	a := r.specOrder()
	b := r.specOrder()
	b.Inst = types.InstanceID{Space: 1, Slot: 2}
	b.Sig = signBody(r.replicaAuth(1), b)
	return &POM{Suspect: 1, Owner: 1, Client: 5, A: a, B: b}
}

// TestCertEmbeddedSpecOrderMarkRequiresClientSigs pins the meaning of the
// SPECORDER mark: a SPECORDER reached through a commit certificate is only
// marked when the leader signature AND every embedded client signature
// verify. A leader-only mark would let a Byzantine owner launder a forged
// client signature — ship the SPECORDER inside a certificate first (where
// only its leader signature matters), then broadcast the same shared value
// as an ordering frame that skips client-signature verification.
func TestCertEmbeddedSpecOrderMarkRequiresClientSigs(t *testing.T) {
	rig := newPVRig(t)
	pred := InboundVerifier(rig.replicaAuth(3), rig.n)

	so := rig.specOrder()
	so.Req.Sig[0] ^= 0xFF // forge the embedded client signature; the leader signature stays valid
	sr := rig.specReply(0, so)
	pred(&CommitFast{Client: 5, Inst: so.Inst, Cert: []*SpecReply{sr}})

	if so.SigVerified() {
		t.Fatal("certificate pass marked a SPECORDER whose embedded client signature is forged")
	}
	if pred(so) {
		t.Fatal("forged-client-sig SPECORDER accepted as an ordering frame after the certificate pass")
	}
}

// TestPreVerifierLoopEquivalence proves the pool path and the in-loop path
// reject exactly the same corrupted frames: for every case the predicate's
// verdict matches whether a fresh replica's loop drops the (unmarked)
// message as invalid, and every predicate-accepted (marked) message drives
// a second replica to the same stats as the unmarked original.
func TestPreVerifierLoopEquivalence(t *testing.T) {
	rig := newPVRig(t)

	cases := []struct {
		name  string
		mk    func() codec.Message
		valid bool
	}{
		{"request/valid", func() codec.Message { return rig.request(1) }, true},
		{"request/bad-client-sig", func() codec.Message {
			m := rig.request(1)
			m.Sig[0] ^= 0xFF
			return m
		}, false},
		{"specorder/valid", func() codec.Message { return rig.specOrder() }, true},
		{"specorder/bad-owner-sig", func() codec.Message {
			m := rig.specOrder()
			m.Sig[0] ^= 0xFF
			return m
		}, false},
		{"specorder/bad-embedded-client-sig", func() codec.Message {
			m := rig.specOrder()
			m.Req.Sig[0] ^= 0xFF
			return m
		}, false},
		{"commit/valid", func() codec.Message { return rig.commit() }, true},
		{"commit/bad-client-sig", func() codec.Message {
			m := rig.commit()
			m.Sig[0] ^= 0xFF
			return m
		}, false},
		{"commit/bad-cert-sig", func() codec.Message {
			m := rig.commit()
			m.Cert[1].Sig[0] ^= 0xFF
			return m
		}, false},
		{"startownerchange/valid", func() codec.Message { return rig.startOwnerChange() }, true},
		{"startownerchange/bad-sig", func() codec.Message {
			m := rig.startOwnerChange()
			m.Sig[0] ^= 0xFF
			return m
		}, false},
		{"pom/valid", func() codec.Message { return rig.pom() }, true},
		{"pom/bad-evidence-sig", func() codec.Message {
			m := rig.pom()
			m.B.Sig[0] ^= 0xFF
			return m
		}, false},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The pool verdict, on the verifying replica's authenticator.
			pred := InboundVerifier(rig.replicaAuth(3), rig.n)
			if got := pred(tc.mk()); got != tc.valid {
				t.Fatalf("pre-verifier accepted=%v, want %v", got, tc.valid)
			}

			// The in-loop verdict on a fresh, unmarked copy.
			inLoop := rig.freshReplica(3)
			inLoop.Receive(noopCtx{}, types.ReplicaNode(1), tc.mk())
			dropped := inLoop.Stats().DroppedInvalid > 0
			if dropped == tc.valid {
				t.Fatalf("in-loop dropped=%v, want %v (pool and loop must reject the same frames)", dropped, !tc.valid)
			}

			// A marked (pool-verified) copy must drive a replica to the same
			// observable counters as the unmarked valid original.
			if tc.valid {
				marked := tc.mk()
				if !pred(marked) {
					t.Fatal("predicate rejected the valid frame on the marked pass")
				}
				viaPool := rig.freshReplica(3)
				viaPool.Receive(noopCtx{}, types.ReplicaNode(1), marked)
				if got, want := viaPool.Stats(), inLoop.Stats(); got != want {
					t.Fatalf("marked delivery stats %+v != unmarked delivery stats %+v", got, want)
				}
			}
		})
	}
}
