package core

import (
	"sort"

	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// This file implements the owner-change protocol (paper §IV-D/E): when a
// command-leader is suspected faulty — via client proof of misbehaviour
// (POM) or RESENDREQ timeouts — replicas vote with STARTOWNERCHANGE; on f+1
// votes a replica commits to the change, stops participating in the
// suspect's instance space, and sends its view of that space (OWNERCHANGE)
// to the next owner. The new owner selects the safe history (Condition 1:
// entries proven by client-signed COMMITs with the highest owner number;
// Condition 2: entries proven by f+1 matching leader-signed SPECORDERs) and
// announces it in NEWOWNER. Replicas apply the safe instances, fill
// unrecoverable slots with no-ops, and freeze the space: no new commands
// are ever ordered in it, because every replica has its own space.

// changeKey identifies one owner-change round.
type changeKey struct {
	suspect types.ReplicaID
	owner   types.OwnerNumber // the owner number being abandoned
}

// claim accumulates Condition-2 evidence for one (slot, command) pair.
type claim struct {
	count  int
	sample HistEntry
	deps   types.InstanceSet
	seq    types.SeqNumber
}

// ownerChangeState is the per-replica owner-change bookkeeping.
type ownerChangeState struct {
	// votes collects STARTOWNERCHANGE senders per round.
	votes map[changeKey]map[types.ReplicaID]bool
	// sentStart marks rounds we have voted in.
	sentStart map[changeKey]bool
	// committed marks rounds we have committed to.
	committed map[changeKey]bool
	// gathered collects OWNERCHANGE histories when we are the new owner.
	gathered map[changeKey]map[types.ReplicaID]*OwnerChange
	// announced marks rounds for which we (as new owner) sent NEWOWNER.
	announced map[changeKey]bool
}

func (s *ownerChangeState) init() {
	s.votes = make(map[changeKey]map[types.ReplicaID]bool)
	s.sentStart = make(map[changeKey]bool)
	s.committed = make(map[changeKey]bool)
	s.gathered = make(map[changeKey]map[types.ReplicaID]*OwnerChange)
	s.announced = make(map[changeKey]bool)
}

// initiateOwnerChange votes to change the owner of suspect's space (called
// on RESENDREQ timeout or validated POM).
func (r *Replica) initiateOwnerChange(ctx proc.Context, suspect types.ReplicaID) {
	key := changeKey{suspect, r.owners[suspect]}
	if r.oc.sentStart[key] || r.log.space(suspect).frozen {
		return
	}
	r.oc.sentStart[key] = true
	msg := &StartOwnerChange{Suspect: suspect, Owner: key.owner, Replica: r.cfg.Self}
	r.cfg.Costs.ChargeSign(ctx)
	msg.Sig = signBody(r.cfg.Auth, msg)
	r.broadcastReplicas(ctx, msg)
	// Count our own vote locally.
	r.recordStartVote(ctx, key, r.cfg.Self)
}

// handlePOM validates a client's proof of misbehaviour: two SPECORDERs
// signed by the same owner placing the same request at different instances
// (or different requests at the same instance).
func (r *Replica) handlePOM(ctx proc.Context, m *POM) {
	if m.A == nil || m.B == nil || m.Suspect < 0 || int(m.Suspect) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	if m.A.Owner != m.Owner || m.B.Owner != m.Owner {
		r.stats.DroppedInvalid++
		return
	}
	owner := m.Owner.OwnerOf(r.n)
	if owner != m.Suspect {
		r.stats.DroppedInvalid++
		return
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 2)
		if verifyBody(r.cfg.Auth, types.ReplicaNode(owner), m.A, m.A.Sig) != nil ||
			verifyBody(r.cfg.Auth, types.ReplicaNode(owner), m.B, m.B.Sig) != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	// Equivocation: the same command ordered at two instances (for batches:
	// any command shared by both batches), or two different batches signed
	// for the same instance.
	equivocated := (m.A.Inst != m.B.Inst && soShareCommand(m.A, m.B)) ||
		(m.A.Inst == m.B.Inst && m.A.CmdDigest != m.B.CmdDigest)
	if !equivocated {
		r.stats.DroppedInvalid++
		return
	}
	r.initiateOwnerChange(ctx, m.Suspect)
}

// soShareCommand reports whether two SPECORDERs order at least one common
// command. Unbatched SPECORDERs compare their signed batch digests (exactly
// the pre-batching check); batched ones compare per-command digests.
func soShareCommand(a, b *SpecOrder) bool {
	if len(a.Batch) == 0 && len(b.Batch) == 0 {
		return a.CmdDigest == b.CmdDigest
	}
	bd := make(map[types.Digest]bool, b.BatchSize())
	for _, d := range b.CmdDigests() {
		bd[d] = true
	}
	for _, d := range a.CmdDigests() {
		if bd[d] {
			return true
		}
	}
	return false
}

// handleStartOwnerChange counts a vote; on f+1 votes the replica commits to
// the change (paper §IV-E).
func (r *Replica) handleStartOwnerChange(ctx proc.Context, m *StartOwnerChange) {
	if m.Suspect < 0 || int(m.Suspect) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	if m.Owner != r.owners[m.Suspect] {
		return // stale or future round
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	r.recordStartVote(ctx, changeKey{m.Suspect, m.Owner}, m.Replica)
}

// recordStartVote tallies one STARTOWNERCHANGE vote and commits to the
// change at f+1 distinct voters.
func (r *Replica) recordStartVote(ctx proc.Context, key changeKey, from types.ReplicaID) {
	votes, ok := r.oc.votes[key]
	if !ok {
		votes = make(map[types.ReplicaID]bool, r.f+1)
		r.oc.votes[key] = votes
	}
	votes[from] = true
	if len(votes) < WeakQuorum(r.n) || r.oc.committed[key] {
		return
	}
	r.oc.committed[key] = true
	// Stop participating in the suspect's space at this owner number.
	r.log.space(key.suspect).suspended = true
	// Amplify: join the change so every correct replica converges.
	if !r.oc.sentStart[key] {
		r.oc.sentStart[key] = true
		msg := &StartOwnerChange{Suspect: key.suspect, Owner: key.owner, Replica: r.cfg.Self}
		r.cfg.Costs.ChargeSign(ctx)
		msg.Sig = signBody(r.cfg.Auth, msg)
		r.broadcastReplicas(ctx, msg)
	}

	// From this point the replica no longer participates in the suspect's
	// space at the old owner number.
	newOwnerNum := key.owner + 1
	newOwner := newOwnerNum.OwnerOf(r.n)
	oc := &OwnerChange{
		Suspect:  key.suspect,
		NewOwner: newOwnerNum,
		Replica:  r.cfg.Self,
		History:  r.historyOf(key.suspect),
	}
	r.cfg.Costs.ChargeSign(ctx)
	oc.Sig = signBody(r.cfg.Auth, oc)
	if newOwner == r.cfg.Self {
		r.acceptOwnerChange(ctx, oc)
	} else {
		r.send(ctx, types.ReplicaNode(newOwner), oc)
	}
}

// historyOf serializes this replica's view of a space: every known entry
// with its strongest proof.
func (r *Replica) historyOf(suspect types.ReplicaID) []HistEntry {
	sp := r.log.space(suspect)
	slots := make([]uint64, 0, len(sp.entries))
	for slot := range sp.entries {
		slots = append(slots, slot)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	hist := make([]HistEntry, 0, len(slots))
	for _, slot := range slots {
		e := sp.entries[slot]
		h := HistEntry{
			Inst:  e.inst,
			Cmd:   e.cmd,
			Batch: e.extra, // batches are reported whole
			Deps:  e.deps.Clone(),
			Seq:   e.seq,
			Owner: e.owner,
			SO:    e.so,
		}
		if e.status >= StatusCommitted {
			h.Status = HistCommitted
			h.ClientCommit = e.clientCommit
		} else {
			h.Status = HistSpecOrdered
		}
		hist = append(hist, h)
	}
	return hist
}

// handleOwnerChange collects histories when this replica is the prospective
// new owner.
func (r *Replica) handleOwnerChange(ctx proc.Context, m *OwnerChange) {
	if m.Suspect < 0 || int(m.Suspect) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	if m.NewOwner.OwnerOf(r.n) != r.cfg.Self || m.NewOwner != r.owners[m.Suspect]+1 {
		return
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	r.acceptOwnerChange(ctx, m)
}

func (r *Replica) acceptOwnerChange(ctx proc.Context, m *OwnerChange) {
	key := changeKey{m.Suspect, m.NewOwner - 1}
	g, ok := r.oc.gathered[key]
	if !ok {
		g = make(map[types.ReplicaID]*OwnerChange, r.f+1)
		r.oc.gathered[key] = g
	}
	g[m.Replica] = m
	// The paper's §IV-E text says f+1 OWNERCHANGE messages suffice, but its
	// own Stability argument (§IV-F) requires 2f+1 histories — with only
	// f+1, a slow-path commit known to a single correct replica can be
	// missed and overwritten by a no-op. We follow the stronger 2f+1.
	if len(g) < SlowQuorum(r.n) || r.oc.announced[key] {
		return
	}
	r.oc.announced[key] = true

	proof := make([]*OwnerChange, 0, len(g))
	for _, rid := range sortedReplicaKeys(g) {
		proof = append(proof, g[rid])
	}
	safe := r.selectSafeHistory(ctx, key, proof)
	msg := &NewOwnerMsg{
		Suspect:     m.Suspect,
		NewOwnerNum: m.NewOwner,
		Replica:     r.cfg.Self,
		Proof:       proof,
		Safe:        safe,
	}
	r.cfg.Costs.ChargeSign(ctx)
	msg.Sig = signBody(r.cfg.Auth, msg)
	r.broadcastReplicas(ctx, msg)
	r.applyNewOwner(ctx, msg)
	r.stats.OwnerChanges++
}

// selectSafeHistory computes the safe instance set G from the collected
// histories, per slot:
//
//   - Condition 1: an entry backed by a valid client-signed COMMIT with the
//     current owner number is adopted as committed.
//   - Condition 2: entries reported spec-ordered by at least f+1 histories
//     with matching instance and command are adopted; their dependency sets
//     are unioned and the maximum sequence number taken (at least one of
//     the f+1 reporters is correct).
//   - Otherwise the slot is unrecoverable and is finalized as a no-op.
func (r *Replica) selectSafeHistory(ctx proc.Context, key changeKey, proof []*OwnerChange) []HistEntry {
	bySlot := make(map[uint64]map[types.Digest]*claim)
	var committed []HistEntry
	committedSlots := make(map[uint64]bool)
	maxSlot := uint64(0)
	// Recovery clamps to the checkpoint watermark: slots at or below this
	// replica's truncation point are covered by a 2f+1-stable checkpoint
	// (every functioning quorum already reflects them), so the owner change
	// must neither re-finalize them nor fill them with no-ops. Histories
	// from peers that truncated further simply lack those entries.
	base := r.log.space(key.suspect).truncated

	for _, oc := range proof {
		for _, h := range oc.History {
			if h.Inst.Space != key.suspect || h.Owner != key.owner || h.Inst.Slot <= base {
				continue
			}
			if h.Inst.Slot > maxSlot {
				maxSlot = h.Inst.Slot
			}
			// Condition 1: client-signed COMMIT proves the entry outright.
			// The COMMIT signature covers (client, timestamp, instance,
			// deps, seq) but not the commands, so the reported commands must
			// additionally be bound to a leader-signed SPECORDER for the
			// same instance — otherwise a byzantine history sender could
			// pair a genuine COMMIT with substituted commands (whole
			// batches ride along, so the check covers every command).
			if h.Status == HistCommitted && h.ClientCommit != nil && !committedSlots[h.Inst.Slot] &&
				h.SO != nil && h.SO.Inst == h.Inst && histBoundToSO(&h) {
				cc := h.ClientCommit
				r.cfg.Costs.ChargeVerify(ctx, 2)
				// The Verified mark binds the SPECORDER signature to its own
				// Owner field; it substitutes for the key.owner check only
				// when the two owner rounds agree.
				if cc.Inst == h.Inst &&
					(cc.SigVerified() || verifyBody(r.cfg.Auth, types.ClientNode(cc.Client), cc, cc.Sig) == nil) &&
					((h.SO.Owner == key.owner && h.SO.SigVerified()) ||
						verifyBody(r.cfg.Auth, types.ReplicaNode(key.owner.OwnerOf(r.n)), h.SO, h.SO.Sig) == nil) {
					committedSlots[h.Inst.Slot] = true
					committed = append(committed, HistEntry{
						Inst: h.Inst, Status: HistCommitted, Cmd: h.Cmd, Batch: h.Batch,
						Deps: cc.Deps.Clone(), Seq: cc.Seq, Owner: key.owner,
					})
					continue
				}
			}
			// Condition 2 accumulation: leader-signed SPECORDER claims.
			if h.SO == nil || h.SO.Inst != h.Inst || !histBoundToSO(&h) {
				continue
			}
			slotClaims, ok := bySlot[h.Inst.Slot]
			if !ok {
				slotClaims = make(map[types.Digest]*claim)
				bySlot[h.Inst.Slot] = slotClaims
			}
			c, ok := slotClaims[h.SO.CmdDigest]
			if !ok {
				c = &claim{sample: h, deps: types.NewInstanceSet()}
				slotClaims[h.SO.CmdDigest] = c
			}
			c.count++
			c.deps.Union(h.Deps)
			if h.Seq > c.seq {
				c.seq = h.Seq
			}
		}
	}

	safe := committed
	for slot := base + 1; slot <= maxSlot; slot++ {
		if committedSlots[slot] {
			continue
		}
		var chosen *claim
		if slotClaims, ok := bySlot[slot]; ok {
			for _, digest := range sortedDigests(slotClaims) {
				c := slotClaims[digest]
				if c.count >= WeakQuorum(r.n) {
					// Verify one representative SPECORDER signature. The mark
					// only substitutes when it binds the same owner round.
					r.cfg.Costs.ChargeVerify(ctx, 1)
					owner := key.owner.OwnerOf(r.n)
					if (c.sample.SO.Owner == key.owner && c.sample.SO.SigVerified()) ||
						verifyBody(r.cfg.Auth, types.ReplicaNode(owner), c.sample.SO, c.sample.SO.Sig) == nil {
						chosen = c
						break
					}
				}
			}
		}
		inst := types.InstanceID{Space: key.suspect, Slot: slot}
		if chosen != nil {
			safe = append(safe, HistEntry{
				Inst: inst, Status: HistCommitted, Cmd: chosen.sample.Cmd, Batch: chosen.sample.Batch,
				Deps: chosen.deps.Clone(), Seq: chosen.seq, Owner: key.owner, SO: chosen.sample.SO,
			})
		} else {
			// Unrecoverable: finalize as a no-op so dependents can execute.
			safe = append(safe, HistEntry{
				Inst: inst, Status: HistCommitted,
				Cmd:  types.Command{Op: types.OpNoop},
				Deps: types.NewInstanceSet(), Seq: 0, Owner: key.owner,
			})
		}
	}
	sort.Slice(safe, func(i, j int) bool { return safe[i].Inst.Less(safe[j].Inst) })
	return safe
}

// handleNewOwner validates and applies a NEWOWNER announcement.
func (r *Replica) handleNewOwner(ctx proc.Context, m *NewOwnerMsg) {
	if m.Suspect < 0 || int(m.Suspect) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	if m.NewOwnerNum != r.owners[m.Suspect]+1 || m.NewOwnerNum.OwnerOf(r.n) != m.Replica {
		return
	}
	r.cfg.Costs.ChargeVerify(ctx, 1+len(m.Proof))
	if !m.SigVerified() {
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	// The proof must contain 2f+1 valid OWNERCHANGE messages for this round
	// (see acceptOwnerChange for why 2f+1 rather than the paper's f+1).
	valid := make(map[types.ReplicaID]bool, len(m.Proof))
	for _, oc := range m.Proof {
		if oc.Suspect != m.Suspect || oc.NewOwner != m.NewOwnerNum {
			continue
		}
		if oc.SigVerified() || verifyBody(r.cfg.Auth, types.ReplicaNode(oc.Replica), oc, oc.Sig) == nil {
			valid[oc.Replica] = true
		}
	}
	if len(valid) < SlowQuorum(r.n) {
		r.stats.DroppedInvalid++
		return
	}
	r.applyNewOwner(ctx, m)
}

// applyNewOwner installs the safe instances, freezes the space, and bumps
// the owner number. Requests that were waiting on the faulty leader are
// re-proposed in this replica's own space.
func (r *Replica) applyNewOwner(ctx proc.Context, m *NewOwnerMsg) {
	sp := r.log.space(m.Suspect)
	if r.owners[m.Suspect] >= m.NewOwnerNum {
		return // already applied
	}
	r.owners[m.Suspect] = m.NewOwnerNum
	sp.frozen = true
	sp.suspended = false
	sp.pending = make(map[uint64]*SpecOrder)
	// Parked evidence-slimmed commit decisions for the retired space are
	// superseded by the owner change's authoritative history; drop them
	// (acceptSpecOrder, their normal drain, never runs for a frozen space).
	for inst := range r.deferredCommits {
		if inst.Space == m.Suspect {
			delete(r.deferredCommits, inst)
		}
	}

	for i := range m.Safe {
		h := &m.Safe[i]
		if h.Inst.Space != m.Suspect || h.Inst.Slot <= sp.truncated {
			// Slots below the local truncation point are stable-executed and
			// freed; a new owner with a lower watermark may still report them.
			continue
		}
		e := r.log.get(h.Inst)
		if e == nil {
			e = &entry{
				inst:  h.Inst,
				owner: h.Owner,
				so:    h.SO,
			}
			r.log.put(e)
			for j := 0; j < h.BatchSize(); j++ {
				cmd := h.CmdAt(j)
				if !cmd.IsNoop() {
					r.instByCmd[cmdKey{cmd.Client, cmd.Timestamp}] = h.Inst
				}
			}
		}
		if e.status >= StatusExecuted {
			continue
		}
		// Install the safe entry's content — the whole batch, never a
		// fragment of one — so every replica finalizes identical commands.
		e.cmd = h.Cmd
		e.extra = h.Batch
		if len(h.Batch) > 0 {
			digests := make([]types.Digest, h.BatchSize())
			for j := range digests {
				digests[j] = h.CmdAt(j).Digest()
			}
			e.cmdDigests = digests
			e.cmdDigest = BatchDigest(digests)
		} else {
			e.cmdDigests = nil
			e.cmdDigest = h.Cmd.Digest()
		}
		e.deps = h.Deps.Clone()
		e.seq = h.Seq
		e.status = StatusCommitted
		// The installed content may differ from what a pending slow-path
		// COMMIT referred to (different batch, or a no-op): drop reply
		// obligations that no longer name a command of this entry — the
		// affected client re-drives its request at a live leader.
		for idx, to := range e.commitReplyTo {
			if idx >= e.nCmds() || e.cmdAt(idx).Client != to {
				delete(e.commitReplyTo, idx)
			}
		}
		for j := 0; j < e.nCmds(); j++ {
			r.deps.update(e.inst, e.cmdAt(j), e.seq)
		}
		r.pendingExec[e.inst] = e
	}
	r.tryExecute(ctx)

	// Purge request bookkeeping that points into the retired space unless
	// the owner change committed that exact request there: stale cached
	// replies would otherwise stop retry rotation from re-leading requests
	// that were lost with the faulty leader.
	for key, inst := range r.instByCmd {
		if inst.Space != m.Suspect {
			continue
		}
		e := r.log.get(inst)
		if e == nil || e.status < StatusCommitted ||
			e.cmd.Client != key.client || e.cmd.Timestamp != key.ts {
			delete(r.instByCmd, key)
			delete(r.replyCache, key)
		}
	}

	// Requests stuck waiting on the faulty leader are the client's to
	// re-drive (retry rotation picks a live leader); just drop the waits.
	for key, rs := range r.resendWait {
		if rs.req.Orig == m.Suspect {
			delete(r.resendWait, key)
			delete(r.timerAct, rs.timer)
		}
	}
}

// Frozen reports whether a space has been frozen by an owner change
// (inspection helper).
func (r *Replica) Frozen(space types.ReplicaID) bool { return r.log.space(space).frozen }

// OwnerNumber returns the current owner number of a space (inspection
// helper).
func (r *Replica) OwnerNumber(space types.ReplicaID) types.OwnerNumber { return r.owners[space] }

// histBoundToSO reports whether a history entry's commands are exactly the
// ones its SPECORDER proof signs: same batch size, same per-command
// digests, and a signed batch digest that binds them. For unbatched entries
// this is the pre-batching d = H(m) check plus the (strictly stronger)
// requirement that the embedded request matches the signed digest.
func histBoundToSO(h *HistEntry) bool {
	so := h.SO
	if h.BatchSize() != so.BatchSize() {
		return false
	}
	digests := make([]types.Digest, h.BatchSize())
	for i := range digests {
		d := h.CmdAt(i).Digest()
		if d != so.ReqAt(i).Cmd.Digest() {
			return false
		}
		digests[i] = d
	}
	return so.CmdDigest == BatchDigest(digests)
}

func sortedReplicaKeys(m map[types.ReplicaID]*OwnerChange) []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedDigests(m map[types.Digest]*claim) []types.Digest {
	out := make([]types.Digest, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		for b := 0; b < len(out[i]); b++ {
			if out[i][b] != out[j][b] {
				return out[i][b] < out[j][b]
			}
		}
		return false
	})
	return out
}
