package core

import (
	"bytes"
	"crypto/sha256"
	"sort"

	"ezbft/internal/codec"
	"ezbft/internal/engine"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// This file implements ezBFT's log lifecycle: checkpointing, garbage
// collection, and state-transfer catch-up (the §V garbage-collection sketch,
// grown into a full subsystem on the engine-level checkpointing contract).
//
// # Checkpoints and truncation
//
// Each instance space is checkpointed independently. A replica tracks, per
// space, the contiguously finally-executed prefix (space.execMark) and a
// chained digest over the committed batch digests of that prefix
// (space.execDigest). Every time the prefix crosses a multiple of
// CheckpointInterval, the replica broadcasts a signed per-space
// ⟨CHECKPOINT, s, w, d⟩σR message: "I have finally executed every slot of
// space s up to w, and the committed content of that prefix digests to d".
// Because the committed command (batch) of every slot is agreed, correct
// replicas that reach the same mark compute the same digest, so votes match.
//
// 2f+1 matching votes establish a *stable* checkpoint (the space's low-water
// mark): at least f+1 correct replicas have executed the prefix, so its
// effects can never be lost and the entries backing it are dead weight. The
// replica then truncates — frees cmdLog entries at or below the mark (minus
// LogRetention) that it has itself executed, prunes the dependency index,
// drops parked evidence-slimmed commit decisions for freed instances, and
// bounds the per-request bookkeeping (reply cache, exactly-once memo,
// instance map) to a recent per-client window. Execution treats a
// dependency below a space's truncation point as executed (it is), and the
// owner-change protocol clamps recovery to the mark: slots at or below a
// stable checkpoint are never refilled with no-ops.
//
// # Why truncating below a 2f+1 stable checkpoint is safe
//
// An entry is freed only when (a) 2f+1 replicas signed that they finally
// executed it — so every functioning quorum intersects a correct replica
// whose state already reflects it, and no future commit or owner-change
// decision can contradict it — and (b) this replica itself executed it, so
// its own execution order is already fixed. Dependency edges into the freed
// prefix carry no information for this replica (it ordered everything after
// them), and other replicas derive their own edges from their own logs, so
// the union of dependency sets across any quorum is unaffected. A replica
// that still needs a freed entry is, by construction, behind the stable
// mark — the state-transfer path below is its only (and sufficient) way
// back.
//
// # Catch-up
//
// A replica that observes a stable checkpoint beyond the end of its own log
// (sp.maxSlot < mark) can no longer recover the gap from retransmissions —
// peers may have truncated it. It sends CATCHUP-REQ to one of the vouching
// replicas; the responder answers with CATCHUP-RESP carrying (1) the
// checkpoint proof — the 2f+1 signed CHECKPOINT votes per space — (2) an
// application snapshot of its final state (types.Snapshotter), (3) its
// per-client executed-timestamp table for exactly-once semantics across the
// transfer, and (4) the suffix: every retained log entry above its
// truncation point, with status and SPECORDER proofs. The requester
// verifies the proof (2f+1 valid signatures over the claimed marks and
// digests), installs the snapshot, rebuilds its protocol state from the
// suffix, and rejoins.
//
// Trust model: the checkpoint proof is verified against 2f+1 signatures,
// and suffix entries are checked against their embedded leader-signed
// SPECORDERs, but the snapshot bytes themselves are vouched for only by
// the responders. ezBFT replicas execute non-interfering commands in
// different orders, so no common sequence of application states exists for
// a quorum to have co-signed (unlike the sequenced baselines, where PBFT's
// snapshot digest is checked against the stable checkpoint digest). A
// wholesale transfer is therefore installed only once f+1 distinct
// responders agree byte-for-byte on the transferred state — per-space
// checkpoint structs, the per-client executed-timestamp table, and the
// snapshot itself (the quorum-anchored proofs pin the marks; the f+1
// agreement pins the bytes behind them). With at most f Byzantine
// replicas, any f+1 group contains a correct one, so a lying responder —
// even one colluding with a checkpoint-forging voter — can neither corrupt
// the rejoining replica nor wedge it: requests rotate through the voter
// set, disagreeing minorities are discarded and counted
// (CatchupMismatches), and responses accumulate across rounds until an
// honest majority forms. Tail transfers carry per-entry evidence (proof
// coverage or a verified SPECORDER signature) and merge incrementally, so
// they remain single-responder.
const (
	tagCheckpoint  = 26
	tagCatchupReq  = 27
	tagCatchupResp = 28
	tagSOFetch     = 29
)

// replyRetention bounds how far behind a client's highest seen timestamp
// the per-request bookkeeping (reply cache, exactly-once memo, instance
// map) is retained across truncation. It must exceed any client's
// pipelining depth so that retransmissions of in-flight requests still hit
// the cache instead of being re-ordered.
const replyRetention = 256

// CheckpointMsg is a replica's signed per-space executed-watermark vote,
// ⟨CHECKPOINT, s, w, d⟩σR.
type CheckpointMsg struct {
	Space   types.ReplicaID // the instance space being checkpointed
	Slot    uint64          // executed watermark (a multiple of the interval)
	Digest  types.Digest    // chained digest of the space's committed prefix 1..Slot
	Replica types.ReplicaID // voter
	Sig     []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *CheckpointMsg) Tag() uint8 { return tagCheckpoint }

// MarshalTo implements codec.Message.
func (m *CheckpointMsg) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *CheckpointMsg) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Space))
	w.Uvarint(m.Slot)
	w.Bytes32(m.Digest)
	w.Int32(int32(m.Replica))
}

// SignedBody returns the bytes the voter signature covers.
func (m *CheckpointMsg) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCheckpoint(r *codec.Reader) (*CheckpointMsg, error) {
	m := &CheckpointMsg{
		Space:   types.ReplicaID(r.Int32()),
		Slot:    r.Uvarint(),
		Digest:  r.Bytes32(),
		Replica: types.ReplicaID(r.Int32()),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// SpaceMark is the requester's position in one instance space, attached to
// a CATCHUP-REQ so the responder can serve a tail instead of a wholesale
// transfer.
type SpaceMark struct {
	ExecMark uint64 // requester's contiguously executed prefix
	MaxSlot  uint64 // requester's log high-water mark
}

// CatchupReq asks a peer for a state transfer, ⟨CATCHUP-REQ, R, marks⟩σR.
// Marks (one per space, in space order) advertises how far the requester
// already got: when its executed prefix covers everything the responder has
// truncated, the responder answers with only the missing tail — no
// application snapshot, no executed-timestamp table — and the requester
// re-executes the tail itself. Empty marks request the wholesale transfer.
type CatchupReq struct {
	Replica types.ReplicaID // requester
	Marks   []SpaceMark     // requester's per-space positions (len N or empty)
	Sig     []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *CatchupReq) Tag() uint8 { return tagCatchupReq }

// MarshalTo implements codec.Message.
func (m *CatchupReq) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *CatchupReq) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Replica))
	w.Uvarint(uint64(len(m.Marks)))
	for _, sm := range m.Marks {
		w.Uvarint(sm.ExecMark)
		w.Uvarint(sm.MaxSlot)
	}
}

// SignedBody returns the bytes the requester signature covers.
func (m *CatchupReq) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCatchupReq(r *codec.Reader) (*CatchupReq, error) {
	m := &CatchupReq{Replica: types.ReplicaID(r.Int32())}
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n > 1024 {
		return nil, codec.ErrOverflow
	}
	m.Marks = make([]SpaceMark, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Marks = append(m.Marks, SpaceMark{ExecMark: r.Uvarint(), MaxSlot: r.Uvarint()})
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

// SpaceCkpt is one instance space's lifecycle state inside a CATCHUP-RESP.
type SpaceCkpt struct {
	Space        types.ReplicaID
	Owner        types.OwnerNumber
	Frozen       bool
	LowWater     uint64       // stable mark (0 = none)
	StableDigest types.Digest // agreed digest at LowWater
	Truncated    uint64       // slots ≤ this exist only inside the snapshot
	MaxSlot      uint64
	ExecMark     uint64
	ExecDigest   types.Digest
	LogHash      types.Digest
}

func (s *SpaceCkpt) marshalTo(w *codec.Writer) {
	w.Int32(int32(s.Space))
	w.Uvarint(uint64(s.Owner))
	w.Bool(s.Frozen)
	w.Uvarint(s.LowWater)
	w.Bytes32(s.StableDigest)
	w.Uvarint(s.Truncated)
	w.Uvarint(s.MaxSlot)
	w.Uvarint(s.ExecMark)
	w.Bytes32(s.ExecDigest)
	w.Bytes32(s.LogHash)
}

func decodeSpaceCkpt(r *codec.Reader) SpaceCkpt {
	return SpaceCkpt{
		Space:        types.ReplicaID(r.Int32()),
		Owner:        types.OwnerNumber(r.Uvarint()),
		Frozen:       r.Bool(),
		LowWater:     r.Uvarint(),
		StableDigest: r.Bytes32(),
		Truncated:    r.Uvarint(),
		MaxSlot:      r.Uvarint(),
		ExecMark:     r.Uvarint(),
		ExecDigest:   r.Bytes32(),
		LogHash:      r.Bytes32(),
	}
}

// ClientMark records one client's highest finally-executed timestamp at the
// responder, for exactly-once semantics across a state transfer.
type ClientMark struct {
	Client types.ClientID
	Ts     uint64
}

// CatchupResp is the state-transfer response, ⟨CATCHUP-RESP⟩σR: per-space
// lifecycle state, the checkpoint proof, the application snapshot, the
// per-client executed-timestamp table, and the retained log suffix. A
// *tail* response (Tail set, served when the requester's own marks showed
// it close enough) carries only the lifecycle state, proof, and the suffix
// above the requester's executed prefix: the requester keeps its state and
// re-executes the tail itself instead of installing wholesale.
type CatchupResp struct {
	Replica  types.ReplicaID
	Tail     bool
	Spaces   []SpaceCkpt
	Clients  []ClientMark
	Snapshot []byte
	Suffix   []HistEntry
	Proof    []*CheckpointMsg // outside the signed body; each vote self-signs
	Sig      []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *CatchupResp) Tag() uint8 { return tagCatchupResp }

// MarshalTo implements codec.Message.
func (m *CatchupResp) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
	w.Uvarint(uint64(len(m.Proof)))
	for _, v := range m.Proof {
		v.MarshalTo(w)
	}
}

func (m *CatchupResp) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Replica))
	w.Bool(m.Tail)
	w.Uvarint(uint64(len(m.Spaces)))
	for i := range m.Spaces {
		m.Spaces[i].marshalTo(w)
	}
	w.Uvarint(uint64(len(m.Clients)))
	for _, cm := range m.Clients {
		w.Int32(int32(cm.Client))
		w.Uvarint(cm.Ts)
	}
	w.Blob(m.Snapshot)
	w.Uvarint(uint64(len(m.Suffix)))
	for i := range m.Suffix {
		m.Suffix[i].marshalTo(w)
	}
}

// SignedBody returns the bytes the responder signature covers.
func (m *CatchupResp) SignedBody() []byte {
	w := codec.NewWriter(1024)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeCatchupResp(r *codec.Reader) (*CatchupResp, error) {
	m := &CatchupResp{Replica: types.ReplicaID(r.Int32()), Tail: r.Bool()}
	nSpaces := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nSpaces > 1024 {
		return nil, codec.ErrOverflow
	}
	m.Spaces = make([]SpaceCkpt, 0, nSpaces)
	for i := uint64(0); i < nSpaces; i++ {
		m.Spaces = append(m.Spaces, decodeSpaceCkpt(r))
	}
	nClients := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nClients > 1<<20 {
		return nil, codec.ErrOverflow
	}
	m.Clients = make([]ClientMark, 0, nClients)
	for i := uint64(0); i < nClients; i++ {
		m.Clients = append(m.Clients, ClientMark{
			Client: types.ClientID(r.Int32()),
			Ts:     r.Uvarint(),
		})
	}
	m.Snapshot = r.Blob()
	nSuffix := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nSuffix > 1<<20 {
		return nil, codec.ErrOverflow
	}
	m.Suffix = make([]HistEntry, 0, nSuffix)
	for i := uint64(0); i < nSuffix; i++ {
		h, err := decodeHistEntry(r)
		if err != nil {
			return nil, err
		}
		m.Suffix = append(m.Suffix, h)
	}
	m.Sig = r.Blob()
	nProof := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if nProof > 4096 {
		return nil, codec.ErrOverflow
	}
	m.Proof = make([]*CheckpointMsg, 0, nProof)
	for i := uint64(0); i < nProof; i++ {
		v, err := decodeCheckpoint(r)
		if err != nil {
			return nil, err
		}
		m.Proof = append(m.Proof, v)
	}
	return m, r.Err()
}

// SOFetch is a client's fetch-on-conflict request, ⟨SOFETCH, c, I, d⟩σc:
// hand me the full SPECORDER at instance I whose batch digest is d. It
// restores universal proof-of-misbehaviour construction under SPECREPLY
// evidence slimming — a client holding only signed SORef digests for two
// conflicting proposals fetches the full SPECORDERs behind them and builds
// the POM any replica accepts.
type SOFetch struct {
	Client types.ClientID
	Inst   types.InstanceID
	Ref    types.Digest // batch digest of the wanted proposal
	Sig    []byte

	codec.Verified // transport-side pre-verification marker; never marshaled
}

// Tag implements codec.Message.
func (m *SOFetch) Tag() uint8 { return tagSOFetch }

// MarshalTo implements codec.Message.
func (m *SOFetch) MarshalTo(w *codec.Writer) {
	m.marshalBody(w)
	w.Blob(m.Sig)
}

func (m *SOFetch) marshalBody(w *codec.Writer) {
	w.Int32(int32(m.Client))
	w.Instance(m.Inst)
	w.Bytes32(m.Ref)
}

// SignedBody returns the bytes the client signature covers.
func (m *SOFetch) SignedBody() []byte {
	w := codec.NewWriter(64)
	m.marshalBody(w)
	return w.Bytes()
}

func decodeSOFetch(r *codec.Reader) (*SOFetch, error) {
	m := &SOFetch{
		Client: types.ClientID(r.Int32()),
		Inst:   r.Instance(),
		Ref:    r.Bytes32(),
	}
	m.Sig = r.Blob()
	return m, r.Err()
}

func init() {
	codec.Register(tagCheckpoint, "ezbft.Checkpoint", func(r *codec.Reader) (codec.Message, error) { return decodeCheckpoint(r) })
	codec.Register(tagCatchupReq, "ezbft.CatchupReq", func(r *codec.Reader) (codec.Message, error) { return decodeCatchupReq(r) })
	codec.Register(tagCatchupResp, "ezbft.CatchupResp", func(r *codec.Reader) (codec.Message, error) { return decodeCatchupResp(r) })
	codec.Register(tagSOFetch, "ezbft.SOFetch", func(r *codec.Reader) (codec.Message, error) { return decodeSOFetch(r) })
}

// --- execution watermark and checkpoint emission ---

// advanceExecMark advances a space's contiguously executed prefix after one
// of its entries finally executed, chaining the execution digest slot by
// slot and emitting a CHECKPOINT vote at every interval boundary crossed.
func (r *Replica) advanceExecMark(ctx proc.Context, spaceID types.ReplicaID) {
	sp := r.log.space(spaceID)
	for {
		e := sp.entries[sp.execMark+1]
		if e == nil || e.status < StatusExecuted {
			return
		}
		sp.execMark++
		sp.execDigest = chainExecDigest(sp.execDigest, sp.execMark, e.cmdDigest)
		if r.ckpt.Boundary(sp.execMark) {
			r.emitCheckpoint(ctx, spaceID, sp)
		}
	}
}

// chainExecDigest extends a space's execution digest with one slot's
// committed batch digest.
func chainExecDigest(prev types.Digest, slot uint64, d types.Digest) types.Digest {
	h := sha256.New()
	h.Write(prev[:])
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(slot >> (56 - 8*i))
	}
	h.Write(buf[:])
	h.Write(d[:])
	var out types.Digest
	copy(out[:], h.Sum(nil))
	return out
}

// emitCheckpoint broadcasts this replica's vote for the space's current
// execution watermark and tallies it locally.
func (r *Replica) emitCheckpoint(ctx proc.Context, spaceID types.ReplicaID, sp *space) {
	m := &CheckpointMsg{
		Space:   spaceID,
		Slot:    sp.execMark,
		Digest:  sp.execDigest,
		Replica: r.cfg.Self,
	}
	r.cfg.Costs.ChargeSign(ctx)
	m.Sig = signBody(r.cfg.Auth, m)
	// Durability point: the vote must survive a crash before peers tally it.
	r.walVote(m)
	r.broadcastReplicas(ctx, m)
	if st := r.ckpt.Record(engine.CheckpointSpace(spaceID), m.Slot, r.cfg.Self, m.Digest, m); st != nil {
		r.applyStableCheckpoint(ctx, st)
	}
}

// handleCheckpoint tallies a peer's vote; a completed 2f+1 quorum advances
// the space's low-water mark and truncates.
func (r *Replica) handleCheckpoint(ctx proc.Context, m *CheckpointMsg) {
	if !r.ckpt.Enabled() {
		return // checkpointing disabled locally; ignore peers' votes
	}
	if m.Space < 0 || int(m.Space) >= r.n || m.Replica < 0 || int(m.Replica) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	// Durability point: the validated vote is quorum state a restart must
	// be able to re-tally.
	r.walVote(m)
	if st := r.ckpt.Record(engine.CheckpointSpace(m.Space), m.Slot, m.Replica, m.Digest, m); st != nil {
		r.applyStableCheckpoint(ctx, st)
	}
}

// applyStableCheckpoint reacts to a newly stable checkpoint: advance the
// space's low-water mark, truncate, surface the checkpoint to the
// application, and — if this replica's log ends below the mark — start a
// state transfer (peers may already have truncated the gap).
func (r *Replica) applyStableCheckpoint(ctx proc.Context, st *engine.StableCheckpoint) {
	spaceID := types.ReplicaID(st.Space)
	sp := r.log.space(spaceID)
	if st.Mark > sp.lowWater {
		sp.lowWater = st.Mark
	}
	r.truncateSpace(spaceID, sp)
	if ck, ok := types.Application(r.cfg.App).(types.Checkpointer); ok {
		ck.Checkpoint(st.Mark, st.Digest)
	}
	// A replica whose log ends below the stable mark, or whose executed
	// prefix trails it by two full intervals, has holes it can no longer
	// fill from retransmissions (peers may have truncated them; SPECORDERs
	// are not re-broadcast): state transfer is the only way back. A commit
	// certificate can install entries at high slots over holes, so maxSlot
	// alone is not evidence of an intact prefix.
	need := sp.maxSlot < st.Mark || sp.execMark+2*r.ckpt.Interval() <= st.Mark
	if !need && sp.execMark < st.Mark {
		// The lag slack above tolerates in-flight execution, but an outright
		// missing slot below the stable mark is a permanent hole: f+1
		// replicas executed that prefix and moved on, and its SPECORDER will
		// never be sent again. Scan the unexecuted window for one.
		from := sp.execMark
		if sp.truncated > from {
			from = sp.truncated
		}
		for slot := from + 1; slot <= st.Mark; slot++ {
			if sp.entries[slot] == nil {
				need = true
				break
			}
		}
	}
	if need && !r.recovering {
		// During recovery the gap is expected mid-replay; the post-replay
		// sweep in recoverFromStore issues the (tail) catch-up instead.
		r.requestCatchup(ctx, st)
	}
	// Durability point: a newly stable checkpoint cuts the store snapshot,
	// letting the store discard the WAL prefix it subsumes (see durable.go).
	r.persistSnapshot()
}

// truncateSpace frees log entries the stable low-water mark has made dead
// weight: slots at or below mark−LogRetention that this replica has itself
// finally executed. Freed entries take their dependency-index references,
// parked commit decisions, and out-of-window per-request bookkeeping with
// them.
func (r *Replica) truncateSpace(spaceID types.ReplicaID, sp *space) {
	limit := sp.lowWater
	if r.cfg.LogRetention >= limit {
		return
	}
	limit -= r.cfg.LogRetention
	if limit > sp.execMark {
		limit = sp.execMark
	}
	if limit <= sp.truncated {
		return
	}
	for slot := sp.truncated + 1; slot <= limit; slot++ {
		e := sp.entries[slot]
		if e == nil {
			continue
		}
		for i := 0; i < e.nCmds(); i++ {
			cmd := e.cmdAt(i)
			if cmd.IsNoop() {
				continue
			}
			// Per-request bookkeeping is kept for a recent per-client window
			// (replyRetention timestamps behind the client's highest) so
			// retransmissions of in-flight pipelined requests still hit the
			// cache; anything older is released with the entry.
			if cmd.Timestamp+replyRetention <= r.highestTs[cmd.Client] {
				key := cmdKey{cmd.Client, cmd.Timestamp}
				if inst, ok := r.instByCmd[key]; ok && inst == e.inst {
					delete(r.instByCmd, key)
				}
				delete(r.replyCache, key)
				delete(r.executed, key)
			}
		}
		delete(sp.entries, slot)
		delete(r.deferredCommits, e.inst)
		r.stats.TruncatedEntries++
	}
	r.deps.prune(spaceID, limit)
	sp.truncated = limit
}

// --- catch-up ---

// requestCatchup asks a window of a stable checkpoint's voters for a state
// transfer. Wholesale installs require f+1 byte-identical responses (see
// handleCatchupResp), so each round solicits f+1 distinct voters; the
// window slides across the sorted voter set attempt by attempt, and a
// timer clears the in-flight guard so lost responses retry — a Byzantine
// voter that stays silent (or serves garbage) cannot wedge the rejoin
// forever, and its divergent responses can never seat an f+1 group alone.
func (r *Replica) requestCatchup(ctx proc.Context, st *engine.StableCheckpoint) {
	if r.catchupPending {
		return
	}
	var voters []types.ReplicaID
	for _, v := range st.Votes {
		if cm, ok := v.(*CheckpointMsg); ok && cm.Replica != r.cfg.Self {
			voters = append(voters, cm.Replica)
		}
	}
	if len(voters) == 0 {
		return
	}
	sort.Slice(voters, func(i, j int) bool { return voters[i] < voters[j] })
	base := int(r.catchupAttempts) % len(voters)
	r.catchupAttempts++
	r.catchupPending = true
	// Advertise our per-space positions so the responder can serve only the
	// tail when our executed prefix already covers its truncation point.
	req := &CatchupReq{Replica: r.cfg.Self, Marks: make([]SpaceMark, r.n)}
	for i := 0; i < r.n; i++ {
		sp := r.log.space(types.ReplicaID(i))
		req.Marks[i] = SpaceMark{ExecMark: sp.execMark, MaxSlot: sp.maxSlot}
	}
	r.cfg.Costs.ChargeSign(ctx)
	req.Sig = signBody(r.cfg.Auth, req)
	want := r.f + 1
	if want > len(voters) {
		want = len(voters)
	}
	for k := 0; k < want; k++ {
		r.send(ctx, types.ReplicaNode(voters[(base+k)%len(voters)]), req)
	}
	// The retry delay backs off with jitter (the shared helper the client's
	// request retry uses): a healed partition releasing many laggards at
	// once must not have them re-request — and re-storm — in lockstep.
	retry := proc.Backoff(ctx, 2*r.cfg.ResendTimeout, r.catchupRetries)
	r.afterTimer(ctx, retry, func(ctx proc.Context) {
		if !r.catchupPending {
			return // a transfer installed in the meantime
		}
		r.catchupPending = false
		if r.catchupHeard {
			// Responders answered but no f+1 group formed yet — keep the
			// cadence tight rather than backing off; the skew resolves as
			// soon as honest responders serve from the same state.
			r.catchupHeard = false
		} else {
			r.catchupRetries++
		}
		// The request or its response was lost. Re-issue to the next voter
		// right away: waiting for the next stability signal is not enough —
		// in a quiesced system it may never come, and the rejoin would
		// stall within one interval of the frontier forever.
		if r.log.space(types.ReplicaID(st.Space)).execMark < st.Mark {
			r.requestCatchup(ctx, st)
		}
	})
}

// handleCatchupReq serves a state transfer from this replica's live state:
// checkpoint proofs from the tracker, an application snapshot, the
// executed-timestamp table, and every retained log entry.
func (r *Replica) handleCatchupReq(ctx proc.Context, m *CatchupReq) {
	if m.Replica < 0 || int(m.Replica) >= r.n || m.Replica == r.cfg.Self {
		r.stats.DroppedInvalid++
		return
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	snap, ok := types.Application(r.cfg.App).(types.Snapshotter)
	if !ok || !r.ckpt.Enabled() {
		return // no state transfer without a snapshotting application
	}
	// Serve a tail when the requester advertised its positions and its
	// executed prefix covers everything we have truncated in every space:
	// our retained entries alone then close its gap, and it keeps its own
	// application state instead of installing ours wholesale.
	marks := m.Marks
	if len(marks) != r.n {
		marks = nil
	} else {
		for i := 0; i < r.n; i++ {
			if marks[i].ExecMark < r.log.space(types.ReplicaID(i)).truncated {
				marks = nil // its gap dips below our suffix: wholesale transfer
				break
			}
		}
	}
	resp := r.buildTransferState(snap, marks)
	r.cfg.Costs.ChargeSign(ctx)
	resp.Sig = signBody(r.cfg.Auth, resp)
	r.send(ctx, types.ReplicaNode(m.Replica), resp)
	r.stats.CatchupsServed++
}

// buildTransferState assembles this replica's transferable state. With
// marks == nil it is the wholesale CATCHUP-RESP payload (also what
// persistSnapshot cuts the store snapshot at): per-space lifecycle state
// and proofs, the application snapshot, the executed-timestamp table, and
// every retained entry. With the requester's marks it is a tail response:
// no snapshot, no timestamp table, and only the entries above the
// requester's executed prefix.
func (r *Replica) buildTransferState(snap types.Snapshotter, marks []SpaceMark) *CatchupResp {
	resp := &CatchupResp{Replica: r.cfg.Self, Tail: marks != nil}
	if marks == nil {
		resp.Snapshot = snap.Snapshot()
	}
	for i := 0; i < r.n; i++ {
		spaceID := types.ReplicaID(i)
		sp := r.log.space(spaceID)
		sc := SpaceCkpt{
			Space:      spaceID,
			Owner:      r.owners[i],
			Frozen:     sp.frozen,
			LowWater:   sp.lowWater,
			Truncated:  sp.truncated,
			MaxSlot:    sp.maxSlot,
			ExecMark:   sp.execMark,
			ExecDigest: sp.execDigest,
			LogHash:    sp.logHash,
		}
		if st := r.ckpt.Stable(engine.CheckpointSpace(spaceID)); st != nil {
			sc.LowWater = st.Mark
			sc.StableDigest = st.Digest
			for _, v := range st.Votes {
				if cm, ok := v.(*CheckpointMsg); ok {
					resp.Proof = append(resp.Proof, cm)
				}
			}
		}
		resp.Spaces = append(resp.Spaces, sc)
		// The retained suffix, in slot order, with each entry's status and
		// strongest proof; a tail response starts above the requester's
		// executed prefix instead of our truncation point.
		floor := sp.truncated
		if marks != nil && marks[i].ExecMark > floor {
			floor = marks[i].ExecMark
		}
		slots := make([]uint64, 0, len(sp.entries))
		for slot := range sp.entries {
			if slot > floor {
				slots = append(slots, slot)
			}
		}
		sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
		for _, slot := range slots {
			e := sp.entries[slot]
			h := HistEntry{
				Inst:  e.inst,
				Cmd:   e.cmd,
				Batch: e.extra,
				Deps:  e.deps.Clone(),
				Seq:   e.seq,
				Owner: e.owner,
				SO:    e.so,
			}
			switch {
			case e.status >= StatusExecuted:
				h.Status = HistExecuted
			case e.status >= StatusCommitted:
				h.Status = HistCommitted
				h.ClientCommit = e.clientCommit
			default:
				h.Status = HistSpecOrdered
			}
			resp.Suffix = append(resp.Suffix, h)
		}
	}
	if marks == nil {
		clients := make([]types.ClientID, 0, len(r.executedTs))
		for c := range r.executedTs {
			clients = append(clients, c)
		}
		sort.Slice(clients, func(a, b int) bool { return clients[a] < clients[b] })
		for _, c := range clients {
			resp.Clients = append(resp.Clients, ClientMark{Client: c, Ts: r.executedTs[c]})
		}
	}
	return resp
}

// handleCatchupResp validates and installs a state transfer.
func (r *Replica) handleCatchupResp(ctx proc.Context, m *CatchupResp) {
	if !r.catchupPending {
		return // unsolicited
	}
	if m.Replica < 0 || int(m.Replica) >= r.n || len(m.Spaces) != r.n {
		r.stats.DroppedInvalid++
		return
	}
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	snap, ok := types.Application(r.cfg.App).(types.Snapshotter)
	if !ok && !m.Tail {
		return // a wholesale install needs a snapshot-restoring application
	}
	// Verify the checkpoint proof: 2f+1 valid, distinct signatures per
	// claimed stable mark, and internal consistency of the per-space state.
	r.cfg.Costs.ChargeVerify(ctx, len(m.Proof))
	ahead := false
	for i := range m.Spaces {
		sc := &m.Spaces[i]
		if sc.Space != types.ReplicaID(i) || sc.Truncated > sc.ExecMark || sc.ExecMark > sc.MaxSlot {
			r.stats.DroppedInvalid++
			return
		}
		if sc.LowWater > 0 {
			okProof := engine.VerifyCheckpointProof(r.n, checkpointVotes(m.Proof, sc.Space), sc.LowWater, sc.StableDigest,
				func(msg codec.Message) (types.ReplicaID, uint64, types.Digest, bool) {
					cm := msg.(*CheckpointMsg)
					valid := cm.SigVerified() ||
						verifyBody(r.cfg.Auth, types.ReplicaNode(cm.Replica), cm, cm.Sig) == nil
					return cm.Replica, cm.Slot, cm.Digest, valid
				})
			if !okProof {
				r.stats.DroppedInvalid++
				return
			}
		}
		if m.Tail {
			// A tail merges incrementally, so the wholesale ahead-ness bar
			// does not apply; soundness instead rests on the per-entry
			// evidence check below — every adopted entry is either covered
			// by the proof verified above or leader-signed.
			continue
		}
		sp := r.log.space(sc.Space)
		// Installing replaces this replica's state wholesale, so it is only
		// sound when the responder is at least as far along everywhere.
		if sc.ExecMark < sp.execMark || sc.MaxSlot < sp.maxSlot {
			return
		}
		if sc.ExecMark > sp.execMark || sc.MaxSlot > sp.maxSlot {
			ahead = true
		}
	}
	if !m.Tail && !ahead {
		r.catchupPending = false
		// Caught up by other means: buffered responses describe a state we
		// have reached and can only go stale from here.
		r.catchupResps = make(map[types.ReplicaID]*CatchupResp)
		return // nothing to gain
	}
	// Suffix entries must be bound to their leader-signed SPECORDER proofs
	// (executed entries from truncation-adjacent slots may predate proof
	// retention; accept them — their effects are checkpoint-covered or will
	// be re-agreed by the commit machinery).
	for i := range m.Suffix {
		h := &m.Suffix[i]
		if h.Inst.Space < 0 || int(h.Inst.Space) >= r.n {
			r.stats.DroppedInvalid++
			return
		}
		if h.SO != nil && (h.SO.Inst != h.Inst || !histBoundToSO(h)) {
			r.stats.DroppedInvalid++
			return
		}
	}
	if m.Tail {
		// A tail merges into the live log without the wholesale path's
		// snapshot install and strict ahead-ness gate, so each suffix entry
		// must carry its own evidence before adoptHist may touch live state:
		// either coverage by the checkpoint proof verified above (slot at or
		// below a space's proven low-water mark) or a leader-signed
		// SPECORDER — signature-verified here, not merely digest-bound. An
		// entry with neither (a lying responder's fabricated "committed"
		// entry, or a legitimate SO-less owner-change no-op fill whose
		// provenance a single responder cannot prove) is dropped, not
		// adopted: the owner-change protocol arbitrates such slots, never a
		// state transfer.
		kept := m.Suffix[:0]
		for i := range m.Suffix {
			h := &m.Suffix[i]
			sc := &m.Spaces[h.Inst.Space]
			if sc.LowWater > 0 && h.Inst.Slot <= sc.LowWater {
				kept = append(kept, m.Suffix[i])
				continue
			}
			if h.SO == nil {
				r.stats.DroppedInvalid++
				continue
			}
			if !h.SO.SigVerified() {
				r.cfg.Costs.ChargeVerify(ctx, 1)
				if verifyBody(r.cfg.Auth, types.ReplicaNode(h.SO.Owner.OwnerOf(r.n)), h.SO, h.SO.Sig) != nil {
					r.stats.DroppedInvalid++
					continue
				}
			}
			kept = append(kept, m.Suffix[i])
		}
		m.Suffix = kept
		r.installTail(ctx, m)
		return
	}
	// f+1 cross-validation: a wholesale response replaces this replica's
	// state with bytes only the responders vouch for, so buffer it and
	// install only once f+1 distinct responders agree byte-for-byte on the
	// whole transfer (per-space checkpoint state, timestamp table, snapshot,
	// suffix). At most f replicas are Byzantine, so an agreeing f+1 group
	// contains a correct one and its transfer is the real state; responders
	// outside the group are the discarded — and counted — minority. The
	// buffer survives retry rounds so agreement can form across voter-window
	// rotations even when single responses trickle in.
	r.catchupResps[m.Replica] = m
	agreeing := 0
	for _, o := range r.catchupResps {
		if catchupAgrees(m, o) {
			agreeing++
		}
	}
	if agreeing < r.f+1 {
		r.catchupHeard = true
		return
	}
	r.stats.CatchupMismatches += uint64(len(r.catchupResps) - agreeing)
	r.catchupResps = make(map[types.ReplicaID]*CatchupResp)
	r.installCatchup(ctx, m, snap)
}

// catchupAgrees reports whether two validated wholesale responses describe
// the same transfer: identical per-space checkpoint structs, per-client
// executed-timestamp tables, snapshot bytes, and suffix entries (compared
// by canonical encoding — both responders serve their suffix in (space,
// slot) order, so honest replicas at the same marks produce identical
// sequences). Everything that install touches is inside the key; nothing a
// single liar controls escapes cross-validation.
func catchupAgrees(a, b *CatchupResp) bool {
	if len(a.Spaces) != len(b.Spaces) || len(a.Clients) != len(b.Clients) ||
		len(a.Suffix) != len(b.Suffix) || !bytes.Equal(a.Snapshot, b.Snapshot) {
		return false
	}
	for i := range a.Spaces {
		// LogHash is the owner's local proposal-chain commitment — only a
		// space's owner maintains it (acceptors leave it zero), so honest
		// responders in different roles legitimately differ there. It is
		// advisory local state, not transferred truth: exclude it.
		ac, bc := a.Spaces[i], b.Spaces[i]
		ac.LogHash, bc.LogHash = types.Digest{}, types.Digest{}
		if ac != bc {
			return false
		}
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			return false
		}
	}
	for i := range a.Suffix {
		if !histEntryEqual(&a.Suffix[i], &b.Suffix[i]) {
			return false
		}
	}
	return true
}

// histEntryEqual compares suffix entries by their canonical wire encoding.
func histEntryEqual(a, b *HistEntry) bool {
	wa := codec.NewWriter(256)
	a.marshalTo(wa)
	wb := codec.NewWriter(256)
	b.marshalTo(wb)
	return bytes.Equal(wa.Bytes(), wb.Bytes())
}

// installTail merges a tail response into the live state: adopt the
// proof-backed low-water marks, install (or deterministically merge) each
// suffix entry through the same adoption path recovery replay uses, and
// let the ordinary execution machinery run the recovered tail — the
// executed prefix below it is never transferred, which is the point.
func (r *Replica) installTail(ctx proc.Context, m *CatchupResp) {
	r.catchupPending = false
	r.catchupRetries = 0
	// Any buffered wholesale responses predate this merge; left around they
	// could later seat an f+1 group and regress the state the tail advanced.
	r.catchupResps = make(map[types.ReplicaID]*CatchupResp)
	for i := range m.Spaces {
		sc := &m.Spaces[i]
		sp := r.log.space(sc.Space)
		if sc.LowWater > sp.lowWater {
			sp.lowWater = sc.LowWater
		}
		if sc.Owner > r.owners[sc.Space] {
			r.owners[sc.Space] = sc.Owner
		}
	}
	for i := range m.Suffix {
		r.adoptHist(ctx, &m.Suffix[i], false)
	}
	// Never reuse a slot of our own space the tail says is taken.
	if own := r.log.space(r.cfg.Self); own.maxSlot+1 > r.nextSlot {
		r.nextSlot = own.maxSlot + 1
	}
	// Proposals buffered out of order may have become contiguous with the
	// merged tail.
	for i := 0; i < r.n; i++ {
		sp := r.log.space(types.ReplicaID(i))
		if sp.frozen {
			continue
		}
		for {
			nxt, ok := sp.pending[sp.maxSlot+1]
			if !ok {
				break
			}
			delete(sp.pending, sp.maxSlot+1)
			r.acceptSpecOrder(ctx, nxt, nil)
		}
	}
	r.stats.CatchupsInstalled++
	r.stats.TailsInstalled++
	r.tryExecute(ctx)
}

// checkpointVotes selects a proof's votes for one space.
func checkpointVotes(proof []*CheckpointMsg, space types.ReplicaID) []codec.Message {
	out := make([]codec.Message, 0, len(proof))
	for _, v := range proof {
		if v.Space == space {
			out = append(out, v)
		}
	}
	return out
}

// installCatchup replaces this replica's application and protocol state
// with a validated state transfer and resumes normal operation from it.
func (r *Replica) installCatchup(ctx proc.Context, m *CatchupResp, snap types.Snapshotter) {
	if !r.installTransfer(ctx, m, snap) {
		return
	}
	r.catchupPending = false
	r.catchupRetries = 0
	r.stats.CatchupsInstalled++
}

// installTransfer is the wholesale state-install shared by the network
// catch-up path and crash recovery (durable.go replays the persisted
// snapshot through it). It reports whether the transfer was applied.
func (r *Replica) installTransfer(ctx proc.Context, m *CatchupResp, snap types.Snapshotter) bool {
	if err := snap.Restore(m.Snapshot); err != nil {
		r.stats.DroppedInvalid++
		return false
	}
	// The restored final state supersedes any speculative overlay.
	r.cfg.App.Rollback()

	// Proposals that arrived (validated, out of order) while the transfer
	// was in flight resume contiguity above the transferred head; keep them
	// across the log replacement.
	oldPending := make(map[types.ReplicaID]map[uint64]*SpecOrder, r.n)
	for i := 0; i < r.n; i++ {
		sp := r.log.space(types.ReplicaID(i))
		if len(sp.pending) > 0 {
			oldPending[types.ReplicaID(i)] = sp.pending
		}
	}
	// Commit decisions that raced ahead of their SPECORDERs survive the
	// transfer too: for instances above the transferred head they are the
	// only commit evidence this replica will ever hold (peers do not
	// re-broadcast), so dropping them would leave the re-admitted tail
	// speculative until the next checkpoint.
	oldDeferred := r.deferredCommits

	r.log = newCmdLog(r.n)
	r.deps = newDepIndex()
	r.instByCmd = make(map[cmdKey]types.InstanceID)
	r.replyCache = make(map[cmdKey]*SpecReply)
	r.pendingExec = make(map[types.InstanceID]*entry)
	r.executed = make(map[cmdKey]types.Result)
	r.deferredCommits = make(map[types.InstanceID][]deferredCommit)
	for key, rs := range r.resendWait {
		delete(r.resendWait, key)
		delete(r.timerAct, rs.timer)
	}
	r.depWait = make(map[types.InstanceID]bool)
	r.execLog = nil // records post-transfer executions only

	// Exactly-once across the transfer: commands the snapshot already
	// reflects are identified by the responder's executed-timestamp table;
	// duplicate instances of them above the marks are skipped at final
	// execution.
	r.executedTs = make(map[types.ClientID]uint64, len(m.Clients))
	r.baseTs = make(map[types.ClientID]uint64, len(m.Clients))
	for _, cm := range m.Clients {
		r.executedTs[cm.Client] = cm.Ts
		r.baseTs[cm.Client] = cm.Ts
		if cm.Ts > r.highestTs[cm.Client] {
			r.highestTs[cm.Client] = cm.Ts
		}
	}

	for i := range m.Spaces {
		sc := &m.Spaces[i]
		sp := r.log.space(sc.Space)
		sp.frozen = sc.Frozen
		sp.lowWater = sc.LowWater
		sp.truncated = sc.Truncated
		sp.maxSlot = sc.MaxSlot
		sp.execMark = sc.ExecMark
		sp.execDigest = sc.ExecDigest
		sp.logHash = sc.LogHash
		if sc.Owner > r.owners[sc.Space] {
			r.owners[sc.Space] = sc.Owner
		}
	}

	for i := range m.Suffix {
		h := &m.Suffix[i]
		e := &entry{
			inst:  h.Inst,
			owner: h.Owner,
			cmd:   h.Cmd,
			extra: h.Batch,
			deps:  h.Deps.Clone(),
			seq:   h.Seq,
			so:    h.SO,
		}
		if len(h.Batch) > 0 {
			digests := make([]types.Digest, h.BatchSize())
			for j := range digests {
				digests[j] = h.CmdAt(j).Digest()
			}
			e.cmdDigests = digests
			e.cmdDigest = BatchDigest(digests)
		} else {
			e.cmdDigest = h.Cmd.Digest()
		}
		switch h.Status {
		case HistExecuted:
			e.status = StatusExecuted
		case HistCommitted:
			e.status = StatusCommitted
			e.clientCommit = h.ClientCommit
		default:
			e.status = StatusSpecOrdered
		}
		sp := r.log.space(h.Inst.Space)
		sp.entries[h.Inst.Slot] = e
		if h.Inst.Slot > sp.maxSlot {
			sp.maxSlot = h.Inst.Slot
		}
		for j := 0; j < e.nCmds(); j++ {
			cmd := e.cmdAt(j)
			if cmd.IsNoop() {
				continue
			}
			r.instByCmd[cmdKey{cmd.Client, cmd.Timestamp}] = e.inst
			r.deps.update(e.inst, cmd, e.seq)
			if cmd.Timestamp > r.highestTs[cmd.Client] {
				r.highestTs[cmd.Client] = cmd.Timestamp
			}
			// Executed suffix entries carry no results (HistEntry has none),
			// so nothing is memoized for them; exactly-once for their
			// commands is covered by the responder's executed-timestamp
			// table, which includes everything it executed — suffix included.
			if e.status >= StatusExecuted && cmd.Timestamp > r.executedTs[cmd.Client] {
				r.executedTs[cmd.Client] = cmd.Timestamp
			}
		}
		if e.status == StatusCommitted {
			r.pendingExec[e.inst] = e
		}
	}

	// Never reuse a slot of our own space the transfer says is taken.
	own := r.log.space(r.cfg.Self)
	if own.maxSlot+1 > r.nextSlot {
		r.nextSlot = own.maxSlot + 1
	}

	// Re-admit buffered proposals beyond the transferred head and drain
	// whatever is now contiguous.
	for spaceID, pend := range oldPending {
		sp := r.log.space(spaceID)
		if sp.frozen {
			continue
		}
		for slot, so := range pend {
			if slot > sp.maxSlot {
				sp.pending[slot] = so
			}
		}
		for {
			nxt, ok := sp.pending[sp.maxSlot+1]
			if !ok {
				break
			}
			delete(sp.pending, sp.maxSlot+1)
			r.acceptSpecOrder(ctx, nxt, nil)
		}
	}
	for inst, dcs := range oldDeferred {
		if inst.Slot <= r.log.space(inst.Space).truncated {
			continue // the transferred state already covers it
		}
		r.deferredCommits[inst] = dcs
		if r.log.get(inst) != nil {
			r.drainDeferredCommits(ctx, inst)
		}
	}
	r.tryExecute(ctx)
	return true
}

// handleSOFetch serves a client's fetch-on-conflict request with the full
// leader-signed SPECORDER behind a proposal reference.
func (r *Replica) handleSOFetch(ctx proc.Context, m *SOFetch) {
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ClientNode(m.Client), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	if m.Inst.Space < 0 || int(m.Inst.Space) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	e := r.log.get(m.Inst)
	if e == nil || e.so == nil || e.so.CmdDigest != m.Ref {
		return // unknown, truncated, or a different proposal — nothing to serve
	}
	r.send(ctx, types.ClientNode(m.Client), e.so)
}

// Lifecycle inspection helpers (tests, experiments, operators).

// LogEntryCount returns the number of retained command-log entries across
// all instance spaces.
func (r *Replica) LogEntryCount() int { return r.log.entryCount() }

// DepIndexSize returns the number of live dependency-index references.
func (r *Replica) DepIndexSize() int { return r.deps.size() }

// LowWaterMark returns a space's stable checkpoint mark.
func (r *Replica) LowWaterMark(space types.ReplicaID) uint64 { return r.log.space(space).lowWater }

// ExecMark returns a space's contiguously executed prefix length.
func (r *Replica) ExecMark(space types.ReplicaID) uint64 { return r.log.space(space).execMark }
