package core

import (
	"testing"
	"time"

	"ezbft/internal/types"
)

// TestFig1FastPathTrace reproduces the paper's Figure 1: a single command
// with no contention commits on the fast path in exactly three
// communication steps, with an empty dependency set and sequence number 1.
func TestFig1FastPathTrace(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("x", "v0")}},
	)
	if !tc.run(5 * time.Second) {
		t.Fatal("command did not complete")
	}

	res := tc.drivers[0].Results[0]
	if !res.FastPath {
		t.Fatal("expected fast-path decision")
	}
	// Three one-way hops of 10ms each: request, spec-order, spec-reply.
	if res.Latency != 30*time.Millisecond {
		t.Fatalf("latency = %v, want 30ms (3 communication steps)", res.Latency)
	}
	if tc.clients[0].Stats().FastDecisions != 1 {
		t.Fatalf("fast decisions = %d", tc.clients[0].Stats().FastDecisions)
	}

	// Every replica committed L0 at instance <R0,1> with D = {} and S = 1.
	tc.rt.Run(tc.rt.Now() + time.Second) // let COMMITFAST propagate
	inst := types.InstanceID{Space: 0, Slot: 1}
	for _, r := range tc.replicas {
		e := r.log.get(inst)
		if e == nil || e.status != StatusExecuted {
			t.Fatalf("%v: entry %v status %v", r.cfg.Self, inst, e)
		}
		if len(e.deps) != 0 || e.seq != 1 {
			t.Fatalf("%v: deps=%v seq=%d, want {} and 1", r.cfg.Self, e.deps, e.seq)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestFastPathResultVisible confirms the value committed on the fast path
// is readable afterwards and final execution reproduced the speculative
// result.
func TestFastPathResultVisible(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("x", "hello"), getCmd("x")}},
	)
	if !tc.run(5 * time.Second) {
		t.Fatal("commands did not complete")
	}
	res := tc.drivers[0].Results
	if !res[1].Result.OK || string(res[1].Result.Value) != "hello" {
		t.Fatalf("GET returned %+v", res[1].Result)
	}
	tc.rt.Run(tc.rt.Now() + time.Second)
	for i, r := range tc.replicas {
		for _, rec := range r.ExecutedLog() {
			e := r.log.get(rec.Inst)
			if e.specExecuted && !e.finalResult.Equal(e.specResult) {
				t.Fatalf("replica %d: fast-path result instability at %v", i, rec.Inst)
			}
		}
		if v, ok := tc.apps[i].Get("x"); !ok || string(v) != "hello" {
			t.Fatalf("replica %d final state: %q %v", i, v, ok)
		}
	}
}

// TestNonInterferingCommandsBothFast: two clients at different replicas
// writing different keys both take the fast path — leaderless operation
// with no coordination between non-interfering commands.
func TestNonInterferingCommandsBothFast(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 3},
		[][]types.Command{{putCmd("a", "1")}, {putCmd("b", "2")}},
	)
	if !tc.run(5 * time.Second) {
		t.Fatal("commands did not complete")
	}
	for i, d := range tc.drivers {
		if !d.Results[0].FastPath {
			t.Fatalf("client %d did not take the fast path", i)
		}
	}
	tc.rt.Run(tc.rt.Now() + time.Second)
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestFig2SlowPathTrace reproduces the paper's Figure 2: interfering
// commands L1 (client c0 → R0) and L2 (client c1 → R3) with the paper's
// arrival orders (R0, R1 see L1 first; R2, R3 see L2 first). Both commands
// take the slow path; final dependency sets are DL1 = {L2}, DL2 = {L1} with
// equal sequence numbers, and the cycle is broken by replica ID: every
// correct replica executes L1 before L2.
func TestFig2SlowPathTrace(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 3},
		[][]types.Command{{putCmd("k", "L1")}, {putCmd("k", "L2")}},
	)
	// Reproduce the paper's arrival orders: delay SPECORDER R0→R2 (so R2
	// sees L2 first) and R3→R1 (so R1 sees L1 first).
	tc.rt.SetFilter(delaySpecOrders(map[[2]types.ReplicaID]time.Duration{
		{0, 2}: 2 * time.Millisecond,
		{3, 1}: 2 * time.Millisecond,
	}))
	if !tc.run(5 * time.Second) {
		t.Fatal("commands did not complete")
	}

	for i, d := range tc.drivers {
		if d.Results[0].FastPath {
			t.Fatalf("client %d unexpectedly took the fast path", i)
		}
	}
	tc.rt.Run(tc.rt.Now() + time.Second)

	instL1 := types.InstanceID{Space: 0, Slot: 1}
	instL2 := types.InstanceID{Space: 3, Slot: 1}
	for _, r := range tc.replicas {
		e1, e2 := r.log.get(instL1), r.log.get(instL2)
		if e1 == nil || e2 == nil || e1.status != StatusExecuted || e2.status != StatusExecuted {
			t.Fatalf("%v: entries not executed", r.cfg.Self)
		}
		if !e1.deps.Has(instL2) {
			t.Fatalf("%v: DL1 = %v, want {L2}", r.cfg.Self, e1.deps)
		}
		if !e2.deps.Has(instL1) {
			t.Fatalf("%v: DL2 = %v, want {L1}", r.cfg.Self, e2.deps)
		}
		if e1.seq != 2 || e2.seq != 2 {
			t.Fatalf("%v: seqs %d/%d, want 2/2", r.cfg.Self, e1.seq, e2.seq)
		}
		// Cycle broken by replica ID: L1 (space R0) executes before L2.
		log := r.ExecutedLog()
		var p1, p2 = -1, -1
		for i, rec := range log {
			if rec.Inst == instL1 {
				p1 = i
			}
			if rec.Inst == instL2 {
				p2 = i
			}
		}
		if p1 < 0 || p2 < 0 || p1 > p2 {
			t.Fatalf("%v: execution order L1@%d L2@%d, want L1 first", r.cfg.Self, p1, p2)
		}
		// Final value is L2's write everywhere.
		if v, _ := tc.apps[r.cfg.Self].Get("k"); string(v) != "L2" {
			t.Fatalf("%v: final k=%q, want L2", r.cfg.Self, v)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestFig2SlowPathLatency: the slow path costs exactly two extra
// communication steps (5 hops total).
func TestFig2SlowPathLatency(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 3},
		[][]types.Command{{putCmd("k", "L1")}, {putCmd("k", "L2")}},
	)
	tc.rt.SetFilter(delaySpecOrders(map[[2]types.ReplicaID]time.Duration{
		{0, 2}: 2 * time.Millisecond,
		{3, 1}: 2 * time.Millisecond,
	}))
	if !tc.run(5 * time.Second) {
		t.Fatal("commands did not complete")
	}
	for i, d := range tc.drivers {
		// 5 hops × 10ms plus the 2ms injected skew on the spec-order leg.
		if d.Results[0].Latency > 60*time.Millisecond {
			t.Fatalf("client %d slow-path latency %v, want ≈5 steps (≤60ms)",
				i, d.Results[0].Latency)
		}
		if d.Results[0].Latency < 50*time.Millisecond {
			t.Fatalf("client %d latency %v suspiciously below 5 steps", i, d.Results[0].Latency)
		}
	}
}

// TestFig3FaultyReplicaTrace reproduces the paper's Figure 3: the Fig 2
// scenario with replica R2 lying about dependencies (always replying with
// D′ = {} and S′ = 1). L1's final dependency set becomes empty, but R1 —
// a correct member of L2's slow quorum — forces L1 into L2's dependency
// set, so all correct replicas still execute L1 before L2.
func TestFig3FaultyReplicaTrace(t *testing.T) {
	opts := defaultOpts()
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{
		2: {LieAboutDeps: true},
	}
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 3},
		[][]types.Command{{putCmd("k", "L1")}, {putCmd("k", "L2")}},
	)
	tc.rt.SetFilter(delaySpecOrders(map[[2]types.ReplicaID]time.Duration{
		{0, 2}: 2 * time.Millisecond,
		{3, 1}: 2 * time.Millisecond,
	}))
	if !tc.run(5 * time.Second) {
		t.Fatal("commands did not complete")
	}
	tc.rt.Run(tc.rt.Now() + time.Second)

	instL1 := types.InstanceID{Space: 0, Slot: 1}
	instL2 := types.InstanceID{Space: 3, Slot: 1}
	for _, r := range tc.correctReplicas() {
		e2 := r.log.get(instL2)
		if e2 == nil || e2.status != StatusExecuted {
			t.Fatalf("%v: L2 not executed", r.cfg.Self)
		}
		// The paper's key claim: despite R2's lie, L2's final commit
		// includes L1.
		if !e2.deps.Has(instL1) {
			t.Fatalf("%v: DL2 = %v, want to contain L1", r.cfg.Self, e2.deps)
		}
		log := r.ExecutedLog()
		var p1, p2 = -1, -1
		for i, rec := range log {
			if rec.Inst == instL1 {
				p1 = i
			}
			if rec.Inst == instL2 {
				p2 = i
			}
		}
		if p1 < 0 || p2 < 0 || p1 > p2 {
			t.Fatalf("%v: execution order L1@%d L2@%d, want L1 first", r.cfg.Self, p1, p2)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestContentionConsistency: heavy interference from all four regions
// converges to identical state and identical interfering order everywhere.
func TestContentionConsistency(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 1, 2, 3},
		hotKeyScripts(4, 10),
	)
	if !tc.run(60 * time.Second) {
		t.Fatal("workload did not complete")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestNoContentionAllFast: disjoint keys from all four regions: every
// command takes the fast path.
func TestNoContentionAllFast(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 1, 2, 3},
		uniqueKeyScripts(4, 10),
	)
	if !tc.run(60 * time.Second) {
		t.Fatal("workload did not complete")
	}
	for i, c := range tc.clients {
		st := c.Stats()
		if st.FastDecisions != 10 || st.SlowDecisions != 0 {
			t.Fatalf("client %d: fast=%d slow=%d, want 10/0", i, st.FastDecisions, st.SlowDecisions)
		}
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestMixedContention interleaves hot-key and private-key commands.
func TestMixedContention(t *testing.T) {
	opts := defaultOpts()
	scripts := [][]types.Command{
		{putCmd("hot", "a1"), putCmd("c0", "x"), incrCmd("ctr"), putCmd("hot", "a2")},
		{putCmd("c1", "y"), putCmd("hot", "b1"), incrCmd("ctr"), getCmd("hot")},
		{incrCmd("ctr"), getCmd("c2"), putCmd("hot", "c1"), putCmd("c2", "z")},
		{putCmd("hot", "d1"), incrCmd("ctr"), getCmd("hot"), getCmd("ctr")},
	}
	tc := newTestCluster(t, opts, []types.ReplicaID{0, 1, 2, 3}, scripts)
	if !tc.run(60 * time.Second) {
		t.Fatal("workload did not complete")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)
	tc.checkConsistency()
	tc.checkStateConvergence()

	// All four INCRs committed exactly once.
	for i := range tc.apps {
		if tc.replicas[i].cfg.Byzantine != nil {
			continue
		}
		v, ok := tc.apps[i].Get("ctr")
		if !ok || kvstoreCounter(v) != 4 {
			t.Fatalf("replica %d: ctr=%d, want 4", i, kvstoreCounter(v))
		}
	}
}

// TestDeterministicReplay: identical seeds produce identical execution
// logs.
func TestDeterministicReplay(t *testing.T) {
	runOnce := func() [][]ExecRecord {
		opts := defaultOpts()
		tc := newTestCluster(t, opts,
			[]types.ReplicaID{0, 1, 2, 3},
			hotKeyScripts(4, 5),
		)
		if !tc.run(60 * time.Second) {
			t.Fatal("workload did not complete")
		}
		tc.rt.Run(tc.rt.Now() + 2*time.Second)
		logs := make([][]ExecRecord, len(tc.replicas))
		for i, r := range tc.replicas {
			logs[i] = r.ExecutedLog()
		}
		return logs
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("replica %d: %d vs %d records", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j].Inst != b[i][j].Inst {
				t.Fatalf("replica %d record %d: %v vs %v", i, j, a[i][j].Inst, b[i][j].Inst)
			}
		}
	}
}

func kvstoreCounter(v []byte) uint64 {
	if len(v) != 8 {
		return 0
	}
	var out uint64
	for _, b := range v {
		out = out<<8 | uint64(b)
	}
	return out
}
