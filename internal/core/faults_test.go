package core

import (
	"testing"
	"time"

	"ezbft/internal/types"
)

// TestMuteLeaderOwnerChange: the client's leader receives requests but
// never responds (fail-silent). The client times out and re-broadcasts;
// the other replicas forward RESENDREQs, time out, vote STARTOWNERCHANGE,
// and complete an owner change. The command is then adopted by a correct
// replica and commits; the suspect's space ends frozen.
func TestMuteLeaderOwnerChange(t *testing.T) {
	opts := defaultOpts()
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{0: {Mute: true}}
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{incrCmd("n")}},
	)
	if !tc.run(30 * time.Second) {
		t.Fatal("command did not complete despite owner change")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	for _, r := range tc.correctReplicas() {
		if !r.Frozen(0) {
			t.Fatalf("%v: suspect's space not frozen", r.cfg.Self)
		}
		if r.OwnerNumber(0) != 1 {
			t.Fatalf("%v: owner number %d, want 1", r.cfg.Self, r.OwnerNumber(0))
		}
		// Exactly-once: the INCR executed once even though several replicas
		// may have adopted the command.
		v, ok := tc.apps[r.cfg.Self].Get("n")
		if !ok || kvstoreCounter(v) != 1 {
			t.Fatalf("%v: n=%d, want 1", r.cfg.Self, kvstoreCounter(v))
		}
	}
	if tc.clients[0].Stats().Retries == 0 {
		t.Fatal("client should have retried")
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestCrashedLeaderOwnerChange: like the mute test but the replica crashes
// mid-run (drops off the network entirely) after ordering some commands.
func TestCrashedLeaderOwnerChange(t *testing.T) {
	opts := defaultOpts()
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("a", "1"), putCmd("b", "2"), putCmd("c", "3")}},
	)
	tc.rt.Start()
	// Let the first command commit, then crash R0.
	tc.rt.RunUntil(func() bool { return len(tc.drivers[0].Results) >= 1 }, 10*time.Second)
	tc.rt.Crash(types.ReplicaNode(0))
	done := tc.rt.RunUntil(func() bool {
		return len(tc.drivers[0].Results) == 3
	}, 60*time.Second)
	if !done {
		t.Fatalf("only %d/3 commands completed after crash", len(tc.drivers[0].Results))
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	for _, r := range tc.correctReplicas()[1:] { // skip crashed R0
		if !r.Frozen(0) {
			t.Fatalf("%v: crashed leader's space not frozen", r.cfg.Self)
		}
	}
	// All three values visible on the surviving replicas.
	for i := 1; i < 4; i++ {
		for key, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
			if v, ok := tc.apps[i].Get(key); !ok || string(v) != want {
				t.Fatalf("replica %d: %s=%q, want %q", i, key, v, want)
			}
		}
	}
}

// TestEquivocatingLeaderPOM: a byzantine command-leader desynchronizes the
// replica halves and then orders client c1's request at different instances
// for each half. Client c1 sees conflicting embedded SPECORDERs, broadcasts
// a POM, and the owner change freezes the leader's space; both clients'
// commands still complete exactly once via retry rotation.
func TestEquivocatingLeaderPOM(t *testing.T) {
	opts := defaultOpts()
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{0: {EquivocateInstances: true}}
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0, 0}, // both clients use the byzantine leader
		[][]types.Command{{incrCmd("n")}, {incrCmd("n")}},
	)
	if !tc.run(60 * time.Second) {
		t.Fatal("commands did not complete despite equivocation")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	if tc.clients[0].Stats().POMsSent+tc.clients[1].Stats().POMsSent == 0 {
		t.Fatal("no client sent a POM")
	}
	for _, r := range tc.correctReplicas() {
		if !r.Frozen(0) {
			t.Fatalf("%v: equivocator's space not frozen", r.cfg.Self)
		}
		v, ok := tc.apps[r.cfg.Self].Get("n")
		if !ok || kvstoreCounter(v) != 2 {
			t.Fatalf("%v: n=%d, want 2 (exactly-once)", r.cfg.Self, kvstoreCounter(v))
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestSlowPathWithOneSilentReplica: with one replica mute, the fast quorum
// (3f+1) is unreachable but every command still commits through the slow
// path (2f+1), demonstrating liveness with f faults.
func TestSlowPathWithOneSilentReplica(t *testing.T) {
	opts := defaultOpts()
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{2: {Mute: true}}
	opts.slowTimeout = 100 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("x", "1"), putCmd("y", "2"), putCmd("z", "3")}},
	)
	if !tc.run(30 * time.Second) {
		t.Fatal("commands did not complete")
	}
	st := tc.clients[0].Stats()
	if st.FastDecisions != 0 || st.SlowDecisions != 3 {
		t.Fatalf("fast=%d slow=%d, want 0/3", st.FastDecisions, st.SlowDecisions)
	}
	tc.rt.Run(tc.rt.Now() + time.Second)
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestOwnerChangeRecoversSpecOrderedEntries: commands that were
// spec-ordered by f+1 correct replicas before their leader went mute are
// recovered through Condition 2 of the owner-change protocol and survive
// in the same instances (Stability).
func TestOwnerChangeRecoversSpecOrderedEntries(t *testing.T) {
	opts := defaultOpts()
	opts.retryTimeout = 400 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("k", "v1"), putCmd("k2", "v2")}},
	)
	tc.rt.Start()
	// First command commits normally.
	tc.rt.RunUntil(func() bool { return len(tc.drivers[0].Results) >= 1 }, 10*time.Second)

	// Now partition R0's outbound COMMIT handling: crash it right after it
	// broadcasts the second SPECORDER but before the client's commit round
	// finishes. The spec-ordered entry must survive the owner change.
	instSecond := types.InstanceID{Space: 0, Slot: 2}
	tc.rt.RunUntil(func() bool {
		// Wait until at least f+1 correct replicas spec-ordered slot 2.
		count := 0
		for i := 1; i < 4; i++ {
			if e := tc.replicas[i].log.get(instSecond); e != nil {
				count++
			}
		}
		return count >= 2
	}, 10*time.Second)
	tc.rt.Crash(types.ReplicaNode(0))

	if !tc.rt.RunUntil(func() bool { return len(tc.drivers[0].Results) == 2 }, 60*time.Second) {
		t.Fatal("second command did not complete after crash")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	// Stability: if slot 2 committed anywhere, it committed with the same
	// command everywhere it committed.
	var committedCmd *types.Command
	for i := 1; i < 4; i++ {
		e := tc.replicas[i].log.get(instSecond)
		if e == nil || e.status < StatusCommitted {
			continue
		}
		if committedCmd == nil {
			c := e.cmd
			committedCmd = &c
		} else if !committedCmd.Equal(e.cmd) {
			t.Fatalf("replica %d committed a different command at %v", i, instSecond)
		}
	}
	for i := 1; i < 4; i++ {
		if v, ok := tc.apps[i].Get("k2"); !ok || string(v) != "v2" {
			t.Fatalf("replica %d: k2=%q, want v2", i, v)
		}
	}
	tc.checkConsistency() // crashed R0 holds a consistent prefix
	// State convergence across the survivors only (R0 is frozen in time).
	ref := tc.apps[1].Digest()
	for i := 2; i < 4; i++ {
		if tc.apps[i].Digest() != ref {
			t.Fatalf("replica %d state diverged from replica 1", i)
		}
	}
}

// TestStaleSpecOrderRejectedAfterFreeze: SPECORDERs for a frozen space are
// dropped — the owner change permanently retires the suspect's space.
func TestStaleSpecOrderRejectedAfterFreeze(t *testing.T) {
	opts := defaultOpts()
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{0: {Mute: true}}
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{putCmd("x", "1")}},
	)
	if !tc.run(30 * time.Second) {
		t.Fatal("command did not complete")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	// Forge a spec order for the frozen space and inject it directly.
	r1 := tc.replicas[1]
	before := r1.Stats().DroppedInvalid
	so := &SpecOrder{
		Owner: 0,
		Inst:  types.InstanceID{Space: 0, Slot: 99},
		Deps:  types.NewInstanceSet(),
		Seq:   1,
	}
	r1.Receive(noopCtx{}, types.ReplicaNode(0), so)
	if r1.Stats().DroppedInvalid <= before {
		t.Fatal("stale SPECORDER for frozen space was not rejected")
	}
}

// TestWrongOwnerNumberRejected: a SPECORDER carrying a mismatched owner
// number is rejected.
func TestWrongOwnerNumberRejected(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0}, [][]types.Command{{}})
	r1 := tc.replicas[1]
	before := r1.Stats().DroppedInvalid
	so := &SpecOrder{
		Owner: 4, // space 0's owner number is 0
		Inst:  types.InstanceID{Space: 0, Slot: 1},
		Deps:  types.NewInstanceSet(),
		Seq:   1,
	}
	r1.Receive(noopCtx{}, types.ReplicaNode(0), so)
	if r1.Stats().DroppedInvalid <= before {
		t.Fatal("wrong-owner SPECORDER accepted")
	}
}
