package core

import (
	"fmt"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/engine"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// ezEngine plugs ezBFT into the protocol-agnostic replication engine.
type ezEngine struct{}

var _ engine.Engine = ezEngine{}

func init() { engine.Register(ezEngine{}) }

// Protocol implements engine.Engine.
func (ezEngine) Protocol() engine.Protocol { return engine.EZBFT }

// NewReplica implements engine.Engine. ezBFT replicas speculate, so the
// application must support speculative execution.
func (ezEngine) NewReplica(o engine.ReplicaOptions) (proc.Process, error) {
	app, ok := o.App.(types.SpeculativeApplication)
	if !ok {
		return nil, fmt.Errorf("core: ezbft requires a speculative application, got %T", o.App)
	}
	cfg := ReplicaConfig{
		Self: o.Self, N: o.N, App: app, Auth: o.Auth, Costs: o.Costs,
		BatchSize:          o.BatchSize,
		BatchDelay:         o.BatchDelay,
		BatchAdaptive:      o.BatchAdaptive,
		CheckpointInterval: o.CheckpointInterval,
		LogRetention:       o.LogRetention,
		ExecWorkers:        o.ExecWorkers,
		Store:              o.Store,
	}
	if o.LatencyBound > 0 {
		cfg.ResendTimeout = 2 * o.LatencyBound
		cfg.DepWaitTimeout = 2 * o.LatencyBound
	}
	if o.Mute {
		cfg.Byzantine = &ByzantineBehavior{Mute: true}
	}
	cfg.Behavior = o.Behavior
	return NewReplica(cfg)
}

// NewClient implements engine.Engine. ezBFT clients submit to their
// co-located replica (opts.Nearest); the protocol has no primary.
func (ezEngine) NewClient(o engine.ClientOptions) (engine.Client, error) {
	cfg := ClientConfig{
		ID: o.ID, N: o.N, Leader: o.Nearest, Auth: o.Auth, Costs: o.Costs,
		Driver:          o.Driver,
		DisableFastPath: o.DisableFastPath,
	}
	if o.LatencyBound > 0 {
		cfg.SlowPathTimeout = o.LatencyBound
		cfg.RetryTimeout = 8 * o.LatencyBound
	}
	c, err := NewClient(cfg)
	if err != nil {
		return nil, err
	}
	return ezClient{c}, nil
}

// InboundVerifier implements engine.Engine: every signed ezBFT message —
// SPECORDER batches, REQUESTs, COMMIT/COMMITFAST certificates, SPECREPLY
// and COMMITREPLY (client-bound), owner-change traffic, and POMs — verifies
// on the transport worker pool.
func (ezEngine) InboundVerifier(a auth.Authenticator, n int) func(msg codec.Message) bool {
	return InboundVerifier(a, n)
}

// ezClient adapts *Client to the engine contract.
type ezClient struct{ *Client }

var (
	_ engine.Client    = ezClient{}
	_ engine.Unwrapper = ezClient{}
)

// ClientStats implements engine.Client.
func (c ezClient) ClientStats() engine.ClientStats {
	s := c.Client.Stats()
	return engine.ClientStats{
		Submitted:     s.Submitted,
		Completed:     s.Completed,
		FastDecisions: s.FastDecisions,
		SlowDecisions: s.SlowDecisions,
		Retries:       s.Retries,
		POMsSent:      s.POMsSent,
	}
}

// Unwrap implements engine.Unwrapper.
func (c ezClient) Unwrap() any { return c.Client }
