package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/kvstore"
	"ezbft/internal/proc"
	"ezbft/internal/sim"
	"ezbft/internal/types"
	"ezbft/internal/workload"
)

// testCluster wires N replicas plus clients onto the simulator for
// white-box protocol tests.
type testCluster struct {
	t        *testing.T
	rt       *sim.Runtime
	n        int
	replicas []*Replica
	apps     []*kvstore.Store
	clients  []*Client
	drivers  []*workload.FixedScript
}

type clusterOpts struct {
	n             int
	delay         time.Duration
	byz           map[types.ReplicaID]*ByzantineBehavior
	slowTimeout   time.Duration
	retryTimeout  time.Duration
	resendTimeout time.Duration
	batchSize     int
	batchDelay    time.Duration
	ckptInterval  uint64
	logRetention  uint64
	seed          int64
}

func defaultOpts() clusterOpts {
	return clusterOpts{
		n:             4,
		delay:         10 * time.Millisecond,
		slowTimeout:   200 * time.Millisecond,
		retryTimeout:  time.Second,
		resendTimeout: 500 * time.Millisecond,
		seed:          1,
	}
}

// newTestCluster builds a cluster with one client per script.
func newTestCluster(t *testing.T, opts clusterOpts, leaders []types.ReplicaID, scripts [][]types.Command) *testCluster {
	t.Helper()
	kernel := sim.NewKernel(opts.seed)
	rt := sim.NewRuntime(kernel, sim.ConstantDelay(opts.delay))

	nodes := make([]types.NodeID, 0, opts.n+len(scripts))
	for i := 0; i < opts.n; i++ {
		nodes = append(nodes, types.ReplicaNode(types.ReplicaID(i)))
	}
	for i := range scripts {
		nodes = append(nodes, types.ClientNode(types.ClientID(i)))
	}
	provider, err := auth.NewProvider(auth.SchemeHMAC, nodes)
	if err != nil {
		t.Fatal(err)
	}

	tc := &testCluster{t: t, rt: rt, n: opts.n}
	for i := 0; i < opts.n; i++ {
		rid := types.ReplicaID(i)
		app := kvstore.New()
		a, err := provider.ForNode(types.ReplicaNode(rid))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewReplica(ReplicaConfig{
			Self:               rid,
			N:                  opts.n,
			App:                app,
			Auth:               a,
			ResendTimeout:      opts.resendTimeout,
			BatchSize:          opts.batchSize,
			BatchDelay:         opts.batchDelay,
			CheckpointInterval: opts.ckptInterval,
			LogRetention:       opts.logRetention,
			Byzantine:          opts.byz[rid],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.AddNode(rep, sim.CostModel{}); err != nil {
			t.Fatal(err)
		}
		tc.replicas = append(tc.replicas, rep)
		tc.apps = append(tc.apps, app)
	}
	for i, script := range scripts {
		cid := types.ClientID(i)
		a, err := provider.ForNode(types.ClientNode(cid))
		if err != nil {
			t.Fatal(err)
		}
		driver := &workload.FixedScript{Commands: script}
		cl, err := NewClient(ClientConfig{
			ID:              cid,
			N:               opts.n,
			Leader:          leaders[i],
			Auth:            a,
			Driver:          driver,
			SlowPathTimeout: opts.slowTimeout,
			RetryTimeout:    opts.retryTimeout,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.AddNode(cl, sim.CostModel{}); err != nil {
			t.Fatal(err)
		}
		tc.clients = append(tc.clients, cl)
		tc.drivers = append(tc.drivers, driver)
	}
	return tc
}

// run starts the cluster and waits until every scripted command completed
// (or the deadline passes).
func (tc *testCluster) run(deadline time.Duration) bool {
	tc.rt.Start()
	return tc.rt.RunUntil(func() bool {
		for i, d := range tc.drivers {
			if len(d.Results) < len(d.Commands) {
				_ = i
				return false
			}
		}
		return true
	}, deadline)
}

// correctReplicas returns the replicas without byzantine behaviour.
func (tc *testCluster) correctReplicas() []*Replica {
	out := make([]*Replica, 0, tc.n)
	for _, r := range tc.replicas {
		if r.cfg.Byzantine == nil {
			out = append(out, r)
		}
	}
	return out
}

// checkConsistency verifies the paper's Consistency property on the correct
// replicas: (a) no two replicas committed different commands at the same
// instance, and (b) interfering commands executed in the same relative
// order everywhere.
func (tc *testCluster) checkConsistency() {
	tc.t.Helper()
	correct := tc.correctReplicas()

	// Batched instances execute several commands at one instance; slots are
	// therefore keyed by (instance, batch position).
	type slotKey struct {
		inst types.InstanceID
		pos  int
	}

	// (a) same command per (instance, batch position).
	byInst := make(map[slotKey]types.Digest)
	for _, r := range correct {
		for _, rec := range r.ExecutedLog() {
			d := rec.Cmd.Digest()
			k := slotKey{rec.Inst, rec.Pos}
			if prev, ok := byInst[k]; ok && prev != d {
				tc.t.Fatalf("consistency violation: two commands executed at %v[%d]", rec.Inst, rec.Pos)
			}
			byInst[k] = d
		}
	}

	// (b) identical relative order of interfering commands.
	ref := correct[0].ExecutedLog()
	for _, r := range correct[1:] {
		log := r.ExecutedLog()
		pos := make(map[slotKey]int, len(log))
		for i, rec := range log {
			pos[slotKey{rec.Inst, rec.Pos}] = i
		}
		for i := 0; i < len(ref); i++ {
			for j := i + 1; j < len(ref); j++ {
				if !ref[i].Cmd.Interferes(ref[j].Cmd) {
					continue
				}
				pi, oki := pos[slotKey{ref[i].Inst, ref[i].Pos}]
				pj, okj := pos[slotKey{ref[j].Inst, ref[j].Pos}]
				if oki && okj && pi > pj {
					tc.t.Fatalf("interfering commands %v and %v ordered differently at %v",
						ref[i].Inst, ref[j].Inst, r.cfg.Self)
				}
			}
		}
	}
}

// checkStateConvergence verifies every correct replica reached the same
// final application state.
func (tc *testCluster) checkStateConvergence() {
	tc.t.Helper()
	correct := tc.correctReplicas()
	ref := tc.apps[correct[0].cfg.Self].Digest()
	for _, r := range correct[1:] {
		if got := tc.apps[r.cfg.Self].Digest(); got != ref {
			tc.t.Fatalf("state divergence: %v has %v, %v has %v",
				correct[0].cfg.Self, ref, r.cfg.Self, got)
		}
	}
}

// checkNontriviality verifies every executed non-noop command was proposed
// by a scripted client.
func (tc *testCluster) checkNontriviality() {
	tc.t.Helper()
	proposed := make(map[types.Digest]bool)
	for i, d := range tc.drivers {
		for seq, base := range d.Commands {
			cmd := base
			cmd.Client = types.ClientID(i)
			cmd.Timestamp = uint64(seq + 1)
			proposed[cmd.Digest()] = true
		}
	}
	for _, r := range tc.correctReplicas() {
		for _, rec := range r.ExecutedLog() {
			if rec.Cmd.IsNoop() {
				continue
			}
			if !proposed[rec.Cmd.Digest()] {
				tc.t.Fatalf("nontriviality violation: %v executed unproposed command %v",
					r.cfg.Self, rec.Cmd)
			}
		}
	}
}

func putCmd(key, val string) types.Command {
	return types.Command{Op: types.OpPut, Key: key, Value: []byte(val)}
}

func getCmd(key string) types.Command { return types.Command{Op: types.OpGet, Key: key} }

func incrCmd(key string) types.Command { return types.Command{Op: types.OpIncr, Key: key} }

// uniqueKeyScripts builds per-client scripts over disjoint keys.
func uniqueKeyScripts(clients, perClient int) [][]types.Command {
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		cmds := make([]types.Command, perClient)
		for i := range cmds {
			cmds[i] = putCmd(fmt.Sprintf("c%d-k%d", c, i), fmt.Sprintf("v%d", i))
		}
		scripts[c] = cmds
	}
	return scripts
}

// hotKeyScripts builds per-client scripts all hitting one key.
func hotKeyScripts(clients, perClient int) [][]types.Command {
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		cmds := make([]types.Command, perClient)
		for i := range cmds {
			cmds[i] = putCmd("hot", fmt.Sprintf("c%d-v%d", c, i))
		}
		scripts[c] = cmds
	}
	return scripts
}

// delaySpecOrders returns a sim.Filter adding extra delay to SPECORDER
// messages matching (from, to); used to reproduce the paper's exact
// arrival orders in the Fig 2 / Fig 3 traces.
// noopCtx is a throwaway proc.Context for invoking handlers directly in
// validation tests.
type noopCtx struct{}

func (noopCtx) Now() time.Duration                   { return 0 }
func (noopCtx) Send(types.NodeID, codec.Message)     {}
func (noopCtx) SetTimer(proc.TimerID, time.Duration) {}
func (noopCtx) CancelTimer(proc.TimerID)             {}
func (noopCtx) Charge(time.Duration)                 {}
func (noopCtx) Rand() *rand.Rand                     { return rand.New(rand.NewSource(0)) }

func delaySpecOrders(rules map[[2]types.ReplicaID]time.Duration) sim.Filter {
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if _, ok := msg.(*SpecOrder); !ok {
			return sim.Deliver, 0
		}
		if !from.IsReplica() || !to.IsReplica() {
			return sim.Deliver, 0
		}
		if d, ok := rules[[2]types.ReplicaID{from.Replica(), to.Replica()}]; ok {
			return sim.Deliver, d
		}
		return sim.Deliver, 0
	}
}
