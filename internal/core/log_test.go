package core

import (
	"testing"
	"testing/quick"

	"ezbft/internal/types"
)

func TestDepIndexCollectAndUpdate(t *testing.T) {
	idx := newDepIndex()
	put := func(key string) types.Command { return types.Command{Op: types.OpPut, Key: key} }
	get := func(key string) types.Command { return types.Command{Op: types.OpGet, Key: key} }

	// Empty index: no deps.
	deps, maxSeq := idx.collect(put("x"), types.InstanceID{})
	if len(deps) != 0 || maxSeq != 0 {
		t.Fatalf("empty index: %v %d", deps, maxSeq)
	}

	// One PUT on x per space.
	i0 := types.InstanceID{Space: 0, Slot: 1}
	i1 := types.InstanceID{Space: 1, Slot: 1}
	idx.update(i0, put("x"), 1)
	idx.update(i1, put("x"), 2)
	deps, maxSeq = idx.collect(put("x"), types.InstanceID{Space: 2, Slot: 1})
	if !deps.Has(i0) || !deps.Has(i1) || len(deps) != 2 {
		t.Fatalf("deps = %v", deps)
	}
	if maxSeq != 2 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}

	// A later PUT in space 0 supersedes the earlier one (latest per class).
	i0b := types.InstanceID{Space: 0, Slot: 5}
	idx.update(i0b, put("x"), 7)
	deps, maxSeq = idx.collect(get("x"), types.InstanceID{Space: 2, Slot: 2})
	if deps.Has(i0) || !deps.Has(i0b) {
		t.Fatalf("latest-per-space violated: %v", deps)
	}
	if maxSeq != 7 {
		t.Fatalf("maxSeq = %d", maxSeq)
	}

	// GETs never depend on GETs.
	idx.update(types.InstanceID{Space: 3, Slot: 1}, get("x"), 9)
	deps, _ = idx.collect(get("x"), types.InstanceID{Space: 2, Slot: 3})
	if deps.Has(types.InstanceID{Space: 3, Slot: 1}) {
		t.Fatal("GET depends on GET")
	}
	// But PUTs do depend on GETs.
	deps, _ = idx.collect(put("x"), types.InstanceID{Space: 2, Slot: 4})
	if !deps.Has(types.InstanceID{Space: 3, Slot: 1}) {
		t.Fatal("PUT does not depend on GET")
	}

	// Different keys never interfere.
	deps, _ = idx.collect(put("y"), types.InstanceID{Space: 2, Slot: 5})
	if len(deps) != 0 {
		t.Fatalf("cross-key deps: %v", deps)
	}

	// The excluded instance never appears in its own deps.
	deps, _ = idx.collect(put("x"), i0b)
	if deps.Has(i0b) {
		t.Fatal("self-dependency")
	}

	// Noops are invisible to the index.
	idx.update(types.InstanceID{Space: 3, Slot: 2}, types.Command{Op: types.OpNoop, Key: "x"}, 50)
	_, maxSeq = idx.collect(put("x"), types.InstanceID{Space: 2, Slot: 6})
	if maxSeq >= 50 {
		t.Fatal("noop affected sequence numbers")
	}
}

func TestDepIndexSeqOnlyUpdate(t *testing.T) {
	idx := newDepIndex()
	put := types.Command{Op: types.OpPut, Key: "x"}
	inst := types.InstanceID{Space: 0, Slot: 1}
	idx.update(inst, put, 1)
	// A commit raising the sequence number re-registers the same instance.
	idx.update(inst, put, 9)
	_, maxSeq := idx.collect(put, types.InstanceID{Space: 1, Slot: 1})
	if maxSeq != 9 {
		t.Fatalf("maxSeq = %d, want 9 after seq-only update", maxSeq)
	}
	// A stale lower seq for the same instance must not regress it.
	idx.update(inst, put, 3)
	_, maxSeq = idx.collect(put, types.InstanceID{Space: 1, Slot: 2})
	if maxSeq != 9 {
		t.Fatalf("maxSeq = %d, regressed by stale update", maxSeq)
	}
}

func TestCmdLogPutGetAndMaxSlot(t *testing.T) {
	l := newCmdLog(4)
	e := &entry{inst: types.InstanceID{Space: 2, Slot: 3}}
	l.put(e)
	if got := l.get(e.inst); got != e {
		t.Fatal("get after put failed")
	}
	if l.get(types.InstanceID{Space: 2, Slot: 4}) != nil {
		t.Fatal("phantom entry")
	}
	if l.space(2).maxSlot != 3 {
		t.Fatalf("maxSlot = %d", l.space(2).maxSlot)
	}
	l.put(&entry{inst: types.InstanceID{Space: 2, Slot: 1}})
	if l.space(2).maxSlot != 3 {
		t.Fatal("maxSlot regressed")
	}
}

func TestSpaceHashChain(t *testing.T) {
	a, b := newSpace(), newSpace()
	inst1 := types.InstanceID{Space: 0, Slot: 1}
	inst2 := types.InstanceID{Space: 0, Slot: 2}
	d1 := types.DigestBytes([]byte("cmd1"))
	d2 := types.DigestBytes([]byte("cmd2"))

	a.extendHash(inst1, d1)
	a.extendHash(inst2, d2)
	b.extendHash(inst1, d1)
	if a.logHash == b.logHash {
		t.Fatal("different prefixes produced equal hashes")
	}
	b.extendHash(inst2, d2)
	if a.logHash != b.logHash {
		t.Fatal("equal prefixes produced different hashes")
	}
	// Order matters.
	c := newSpace()
	c.extendHash(inst2, d2)
	c.extendHash(inst1, d1)
	if c.logHash == a.logHash {
		t.Fatal("hash insensitive to order")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusNone: "none", StatusSpecOrdered: "spec-ordered",
		StatusCommitted: "committed", StatusExecuted: "executed",
		Status(99): "invalid",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

// Property: collect never returns the excluded instance and maxSeq is
// always ≥ the seq of every returned dependency's registration.
func TestDepIndexProperty(t *testing.T) {
	f := func(slots []uint8, seqs []uint8) bool {
		if len(slots) == 0 || len(seqs) == 0 {
			return true
		}
		idx := newDepIndex()
		put := types.Command{Op: types.OpPut, Key: "k"}
		var lastInst types.InstanceID
		for i := range slots {
			seq := types.SeqNumber(seqs[i%len(seqs)]%16) + 1
			inst := types.InstanceID{Space: types.ReplicaID(i % 4), Slot: uint64(slots[i]%8) + 1}
			idx.update(inst, put, seq)
			lastInst = inst
		}
		deps, maxSeq := idx.collect(put, lastInst)
		if deps.Has(lastInst) {
			return false
		}
		// maxSeq must equal the max over returned deps' seqs (cannot check
		// registration seqs directly since later slots supersede), so just
		// require it to be ≥ 0 and consistent with a second call.
		deps2, maxSeq2 := idx.collect(put, lastInst)
		return maxSeq == maxSeq2 && deps.Equal(deps2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
