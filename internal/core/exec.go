package core

import (
	"slices"
	"sort"

	"ezbft/internal/graph"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// cmpInstance orders instances for the allocation-free generic sort
// (sort.Slice boxes its slice argument on every call, which dominated the
// contended execution pass's garbage).
func cmpInstance(a, b types.InstanceID) int {
	switch {
	case a.Less(b):
		return -1
	case b.Less(a):
		return 1
	default:
		return 0
	}
}

// tryExecute runs the paper's execution protocol (§IV-B) over every
// committed-but-unexecuted entry whose dependency closure is fully
// committed:
//
//  1. wait for the command and its (transitive) dependencies to be
//     committed;
//  2. build the dependency graph;
//  3. find strongly connected components, sort them topologically;
//  4. execute components in inverse topological order, commands within a
//     component in sequence-number order, ties broken by replica ID.
//
// Final execution runs on the previous final version of the state
// (PromoteFinal); afterwards the speculative overlay is discarded, since
// the final state supersedes it.
func (r *Replica) tryExecute(ctx proc.Context) {
	if len(r.pendingExec) == 0 {
		return
	}
	// Deterministic iteration over pending entries. The pass-local scratch
	// (the sorted pending slice and the blocked set) lives on the replica
	// and is recycled across passes: under contention tryExecute runs once
	// per commit arrival over a large backlog, and rebuilding both
	// allocations every pass dominated the execution path's garbage (see
	// BenchmarkTryExecuteContended).
	pending := r.execPending[:0]
	for inst := range r.pendingExec {
		pending = append(pending, inst)
	}
	slices.SortFunc(pending, cmpInstance)
	r.execPending = pending[:0]

	// blocked caches instances found unexecutable during this pass, so a
	// large backlog of entries stuck behind the same dependency is checked
	// once rather than once per pending entry (contended workloads create
	// exactly that shape).
	blocked := r.execBlocked
	clear(blocked)
	executedAny := false
	for _, inst := range pending {
		e, ok := r.pendingExec[inst]
		if !ok {
			continue // executed as part of an earlier closure this round
		}
		if blocked[inst] {
			continue
		}
		closure, blockers := r.depClosure(e, blocked)
		if len(blockers) > 0 {
			// A committed command is stuck behind uncommitted dependencies.
			// If a dependency's command-leader never drives it to commit,
			// the only recovery is an owner change for that instance space
			// (which either restores the entry via Condition 1/2 or
			// finalizes it as a no-op) — arm the dependency-wait timers.
			// Every closure member is equally stuck this pass.
			for _, ce := range closure {
				blocked[ce.inst] = true
			}
			slices.SortFunc(blockers, cmpInstance)
			r.armDepWait(ctx, blockers)
			continue
		}
		r.executeClosure(ctx, closure)
		executedAny = true
	}
	if executedAny {
		// The final state advanced; speculative effects layered on the old
		// final state are stale.
		r.cfg.App.Rollback()
	}
}

// depClosure collects the committed, unexecuted entries reachable from e
// through dependency edges. It returns the instances blocking execution
// (uncommitted reachable dependencies), if any (the paper: "wait for the
// dependencies to be committed and enqueued for final execution as well").
// Dependencies in frozen spaces that the owner change did not recover can
// never commit; they are deterministically treated as executed no-ops
// (every replica applies the same NEWOWNER safe set, so the skip set is
// identical everywhere).
//
// Traversal order is intentionally unordered (map iteration): closure
// membership and blocker identity are order-independent, and the execution
// order is derived deterministically by the dependency graph afterwards.
// Instances in `blocked` are known-stuck from earlier in the same pass.
//
// The traversal scratch (seen set, work stack, closure and blocker slices)
// is replica-owned and recycled call to call; the returned slices alias it
// and are only valid until the next depClosure call — both callers consume
// them immediately.
func (r *Replica) depClosure(e *entry, blocked map[types.InstanceID]bool) (closure []*entry, blockers []types.InstanceID) {
	if r.execSeen == nil {
		r.execSeen = make(map[types.InstanceID]bool)
	}
	seen := r.execSeen
	clear(seen)
	seen[e.inst] = true
	stack := append(r.execStack[:0], e)
	closure = append(r.execClosure[:0], e)
	blockers = r.execBlockers[:0]
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dep := range cur.deps {
			if seen[dep] {
				continue
			}
			seen[dep] = true
			if blocked[dep] {
				blockers = append(blockers, dep)
				continue
			}
			de := r.log.get(dep)
			if de == nil || de.status < StatusCommitted {
				dsp := r.log.space(dep.Space)
				if dsp.frozen {
					continue // unrecovered entry in a frozen space: no-op
				}
				if dep.Slot <= dsp.truncated {
					continue // below the truncation point: executed and freed
				}
				blockers = append(blockers, dep)
				continue
			}
			if de.status == StatusExecuted {
				continue // already ordered before everything pending
			}
			closure = append(closure, de)
			stack = append(stack, de)
		}
	}
	r.execStack = stack[:0]
	r.execClosure = closure
	r.execBlockers = blockers
	return closure, blockers
}

// armDepWait starts the dependency-wait timer for each blocking instance:
// if the dependency is still uncommitted when the timer fires, an owner
// change is initiated for its space.
func (r *Replica) armDepWait(ctx proc.Context, blockers []types.InstanceID) {
	for _, dep := range blockers {
		if r.depWait[dep] {
			continue
		}
		r.depWait[dep] = true
		dep := dep
		r.afterTimer(ctx, r.cfg.DepWaitTimeout, func(ctx proc.Context) {
			delete(r.depWait, dep)
			de := r.log.get(dep)
			if de != nil && de.status >= StatusCommitted {
				return // committed in the meantime
			}
			if r.log.space(dep.Space).frozen {
				r.tryExecute(ctx) // frozen while waiting: no-op rule applies
				return
			}
			r.initiateOwnerChange(ctx, r.owners[dep.Space].OwnerOf(r.n))
		})
	}
}

// executeClosure linearizes one complete closure and executes it.
func (r *Replica) executeClosure(ctx proc.Context, closure []*entry) {
	g := graph.NewDepGraph()
	for _, e := range closure {
		g.Add(e.inst, e.seq, e.deps)
	}
	for _, inst := range g.ExecutionOrder() {
		e := r.log.get(inst)
		if e == nil || e.status != StatusCommitted {
			continue
		}
		r.finalExecute(ctx, e)
	}
}

// finalExecute runs one entry's commands — the whole batch, in batch
// order — on the final state with exactly-once semantics: if a client
// request was already executed under a different instance (a re-proposal
// after an owner change, or a duplicate landing in two different batches),
// the memoized result is reused instead of re-executing.
func (r *Replica) finalExecute(ctx proc.Context, e *entry) {
	for i := 0; i < e.nCmds(); i++ {
		cmd := e.cmdAt(i)
		key := cmdKey{cmd.Client, cmd.Timestamp}
		var res types.Result
		if cmd.IsNoop() {
			res = types.Result{OK: true}
		} else if memo, done := r.executed[key]; done {
			res = memo
		} else if cmd.Timestamp <= r.baseTs[cmd.Client] {
			// A duplicate instance of a command the installed state-transfer
			// snapshot already reflects: applying it again would double-execute.
			res = types.Result{OK: true}
		} else {
			r.cfg.Costs.ChargeExecute(ctx)
			res = r.cfg.App.PromoteFinal(cmd)
			r.executed[key] = res
		}
		if !cmd.IsNoop() && cmd.Timestamp > r.executedTs[cmd.Client] {
			r.executedTs[cmd.Client] = cmd.Timestamp
		}
		e.setFinalResult(i, res)
		r.execLog = append(r.execLog, ExecRecord{Inst: e.inst, Pos: i, Cmd: cmd, Result: res})
		r.stats.FinalExecutions++
	}
	e.status = StatusExecuted
	delete(r.pendingExec, e.inst)
	r.advanceExecMark(ctx, e.inst.Space)
	if len(e.commitReplyTo) > 0 {
		// Deterministic send order keeps simulations replayable.
		idxs := make([]int, 0, len(e.commitReplyTo))
		for idx := range e.commitReplyTo {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs)
		for _, idx := range idxs {
			r.sendCommitReply(ctx, e, idx, e.commitReplyTo[idx])
		}
		e.commitReplyTo = nil
	}
}

// ExecutedLog returns the sequence of finally executed commands with their
// instances, in execution order. Test/inspection helper: consistency checks
// compare these across replicas.
func (r *Replica) ExecutedLog() []ExecRecord { return append([]ExecRecord(nil), r.execLog...) }

// ExecRecord is one finally executed command.
type ExecRecord struct {
	Inst   types.InstanceID
	Pos    int // position within the instance's batch (0 when unbatched)
	Cmd    types.Command
	Result types.Result
}

// CommitCert is one committed instance's agreed ordering attributes.
// Inspection helper: the scenario harness compares certificates across
// replicas — two correct replicas committing the same instance with
// different dependency sets or sequence numbers is a safety violation.
type CommitCert struct {
	Inst      types.InstanceID
	Deps      types.InstanceSet
	Seq       types.SeqNumber
	CmdDigest types.Digest
}

// CommittedCerts returns the certificate of every retained instance that
// reached committed (or executed) status, in no particular order.
// Truncated slots are absent; callers intersect across replicas.
func (r *Replica) CommittedCerts() []CommitCert {
	var out []CommitCert
	for i := 0; i < r.n; i++ {
		sp := r.log.space(types.ReplicaID(i))
		for _, e := range sp.entries {
			if e.status < StatusCommitted {
				continue
			}
			out = append(out, CommitCert{
				Inst:      e.inst,
				Deps:      e.deps.Clone(),
				Seq:       e.seq,
				CmdDigest: e.cmdDigest,
			})
		}
	}
	return out
}
