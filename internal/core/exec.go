package core

import (
	"slices"

	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// cmpInstance orders instances for the allocation-free generic sort
// (sort.Slice boxes its slice argument on every call, which dominated the
// contended execution pass's garbage).
func cmpInstance(a, b types.InstanceID) int {
	switch {
	case a.Less(b):
		return -1
	case b.Less(a):
		return 1
	default:
		return 0
	}
}

// tryExecute runs the paper's execution protocol (§IV-B) over every
// committed-but-unexecuted entry whose dependency closure is fully
// committed:
//
//  1. wait for the command and its (transitive) dependencies to be
//     committed;
//  2. build the dependency graph;
//  3. find strongly connected components, sort them topologically;
//  4. execute components in inverse topological order, commands within a
//     component in sequence-number order, ties broken by replica ID.
//
// Final execution runs on the previous final version of the state
// (PromoteFinal); afterwards the speculative overlay is discarded, since
// the final state supersedes it.
func (r *Replica) tryExecute(ctx proc.Context) {
	if len(r.pendingExec) == 0 {
		return
	}
	// Deterministic iteration over pending entries. The pass-local scratch
	// (the sorted pending slice and the blocked set) lives on the replica
	// and is recycled across passes: under contention tryExecute runs once
	// per commit arrival over a large backlog, and rebuilding both
	// allocations every pass dominated the execution path's garbage (see
	// BenchmarkTryExecuteContended).
	pending := r.execPending[:0]
	for inst := range r.pendingExec {
		pending = append(pending, inst)
	}
	slices.SortFunc(pending, cmpInstance)
	r.execPending = pending[:0]

	// blocked caches instances found unexecutable during this pass, so a
	// large backlog of entries stuck behind the same dependency is checked
	// once rather than once per pending entry (contended workloads create
	// exactly that shape).
	blocked := r.execBlocked
	clear(blocked)
	executedAny := false
	for _, inst := range pending {
		e, ok := r.pendingExec[inst]
		if !ok {
			continue // executed as part of an earlier closure this round
		}
		if r.exec != nil && r.exec.claimedInst(inst) {
			continue // scheduled by an earlier closure of the current batch
		}
		if blocked[inst] {
			continue
		}
		closure, blockers := r.depClosure(e, blocked)
		if len(blockers) > 0 {
			// A committed command is stuck behind uncommitted dependencies.
			// If a dependency's command-leader never drives it to commit,
			// the only recovery is an owner change for that instance space
			// (which either restores the entry via Condition 1/2 or
			// finalizes it as a no-op) — arm the dependency-wait timers.
			// Every closure member is equally stuck this pass.
			if r.exec != nil {
				// Arming timers touches the Context: flush the accumulated
				// batch first so charges, sends, and timers happen in the
				// exact sequence the serial walk would produce.
				r.exec.flush(ctx, r)
			}
			for _, ce := range closure {
				// The status guard matters only on the batched path: this
				// closure may share entries with the just-flushed batch
				// (the serial walk would never have pulled those in — it
				// sees shared dependencies StatusExecuted), and marking
				// them blocked would spuriously block later roots that
				// depend on them.
				if ce.status != StatusCommitted {
					continue
				}
				blocked[ce.inst] = true
			}
			slices.SortFunc(blockers, cmpInstance)
			r.armDepWait(ctx, blockers)
			continue
		}
		r.executeClosure(ctx, closure)
		executedAny = true
	}
	if r.exec != nil {
		r.exec.flush(ctx, r)
	}
	if executedAny {
		// The final state advanced; speculative effects layered on the old
		// final state are stale.
		r.cfg.App.Rollback()
	}
}

// depClosure collects the committed, unexecuted entries reachable from e
// through dependency edges. It returns the instances blocking execution
// (uncommitted reachable dependencies), if any (the paper: "wait for the
// dependencies to be committed and enqueued for final execution as well").
// Dependencies in frozen spaces that the owner change did not recover can
// never commit; they are deterministically treated as executed no-ops
// (every replica applies the same NEWOWNER safe set, so the skip set is
// identical everywhere).
//
// Traversal order is intentionally unordered (map iteration): closure
// membership and blocker identity are order-independent, and the execution
// order is derived deterministically by the dependency graph afterwards.
// Instances in `blocked` are known-stuck from earlier in the same pass.
//
// The traversal scratch (seen set, work stack, closure and blocker slices)
// is replica-owned and recycled call to call; the returned slices alias it
// and are only valid until the next depClosure call — both callers consume
// them immediately.
func (r *Replica) depClosure(e *entry, blocked map[types.InstanceID]bool) (closure []*entry, blockers []types.InstanceID) {
	if r.execSeen == nil {
		r.execSeen = make(map[types.InstanceID]bool)
	}
	seen := r.execSeen
	clear(seen)
	seen[e.inst] = true
	stack := append(r.execStack[:0], e)
	closure = append(r.execClosure[:0], e)
	blockers = r.execBlockers[:0]
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for dep := range cur.deps {
			if seen[dep] {
				continue
			}
			seen[dep] = true
			if blocked[dep] {
				blockers = append(blockers, dep)
				continue
			}
			de := r.log.get(dep)
			if de == nil || de.status < StatusCommitted {
				dsp := r.log.space(dep.Space)
				if dsp.frozen {
					continue // unrecovered entry in a frozen space: no-op
				}
				if dep.Slot <= dsp.truncated {
					continue // below the truncation point: executed and freed
				}
				blockers = append(blockers, dep)
				continue
			}
			if de.status == StatusExecuted {
				continue // already ordered before everything pending
			}
			closure = append(closure, de)
			stack = append(stack, de)
		}
	}
	r.execStack = stack[:0]
	r.execClosure = closure
	r.execBlockers = blockers
	return closure, blockers
}

// armDepWait starts the dependency-wait timer for each blocking instance:
// if the dependency is still uncommitted when the timer fires, an owner
// change is initiated for its space.
func (r *Replica) armDepWait(ctx proc.Context, blockers []types.InstanceID) {
	for _, dep := range blockers {
		if r.depWait[dep] {
			continue
		}
		r.depWait[dep] = true
		dep := dep
		r.afterTimer(ctx, r.cfg.DepWaitTimeout, func(ctx proc.Context) {
			delete(r.depWait, dep)
			de := r.log.get(dep)
			if de != nil && de.status >= StatusCommitted {
				return // committed in the meantime
			}
			if r.log.space(dep.Space).frozen {
				r.tryExecute(ctx) // frozen while waiting: no-op rule applies
				return
			}
			r.initiateOwnerChange(ctx, r.owners[dep.Space].OwnerOf(r.n))
		})
	}
}

// executeClosure linearizes one complete closure and executes it. The
// dependency graph is replica-owned scratch, Reset and refilled per closure
// (building a fresh graph per closure used to dominate the execution path's
// allocations); it borrows the entries' committed dependency sets, which are
// not mutated while the closure executes. When the parallel executor is
// enabled (ExecWorkers > 1 and the application implements
// types.ConcurrentApplication) the linearized closure is scheduled as a
// level-ordered DAG instead of the serial walk — appended to the pass's
// accumulating batch, which tryExecute flushes; both paths produce
// byte-identical results, logs, and reply order (see executor.go).
//
// Entries the current batch already scheduled are excluded from the graph:
// the serial walk would see them StatusExecuted (a shared dependency of two
// roots executes with the first), and excluding them keeps this closure's
// linearization identical to the serial walk's.
func (r *Replica) executeClosure(ctx proc.Context, closure []*entry) {
	g := r.execGraph
	g.Reset()
	if r.exec != nil {
		for _, e := range closure {
			if r.exec.claimedInst(e.inst) {
				continue
			}
			g.Add(e.inst, e.seq, e.deps)
		}
		order, spans := g.Linearize()
		r.exec.addClosure(r, order, spans)
		return
	}
	for _, e := range closure {
		g.Add(e.inst, e.seq, e.deps)
	}
	order, _ := g.Linearize()
	for _, inst := range order {
		e := r.log.get(inst)
		if e == nil || e.status != StatusCommitted {
			continue
		}
		r.finalExecute(ctx, e)
	}
}

// finalExecute runs one entry's commands — the whole batch, in batch
// order — on the final state with exactly-once semantics: if a client
// request was already executed under a different instance (a re-proposal
// after an owner change, or a duplicate landing in two different batches),
// the memoized result is reused instead of re-executing.
func (r *Replica) finalExecute(ctx proc.Context, e *entry) {
	for i := 0; i < e.nCmds(); i++ {
		cmd := e.cmdAt(i)
		key := cmdKey{cmd.Client, cmd.Timestamp}
		var res types.Result
		if cmd.IsNoop() {
			res = types.Result{OK: true}
		} else if memo, done := r.executed[key]; done {
			res = memo
		} else if cmd.Timestamp <= r.baseTs[cmd.Client] {
			// A duplicate instance of a command the installed state-transfer
			// snapshot already reflects: applying it again would double-execute.
			res = types.Result{OK: true}
		} else {
			r.cfg.Costs.ChargeExecute(ctx)
			res = r.cfg.App.PromoteFinal(cmd)
			r.executed[key] = res
		}
		r.recordFinal(e, i, cmd, res)
	}
	r.finishEntry(ctx, e)
}

// recordFinal is the per-command bookkeeping both execution paths share:
// executed-timestamp watermark, the entry's final result slot, the
// replica-wide execution log, and the execution counter. Single-sourced so
// the serial and parallel paths cannot drift.
func (r *Replica) recordFinal(e *entry, i int, cmd types.Command, res types.Result) {
	if !cmd.IsNoop() && cmd.Timestamp > r.executedTs[cmd.Client] {
		r.executedTs[cmd.Client] = cmd.Timestamp
	}
	e.setFinalResult(i, res)
	r.execLog = append(r.execLog, ExecRecord{Inst: e.inst, Pos: i, Cmd: cmd, Result: res})
	r.stats.FinalExecutions++
}

// finishEntry is the per-entry completion bookkeeping both execution paths
// share: status, the pending-execution set, the checkpoint execution mark,
// and the slow-path commit replies.
func (r *Replica) finishEntry(ctx proc.Context, e *entry) {
	e.status = StatusExecuted
	delete(r.pendingExec, e.inst)
	// Durability point: the execution (and its executed-timestamp
	// increments) must survive a crash before replies reveal it.
	r.walExec(e)
	r.advanceExecMark(ctx, e.inst.Space)
	if len(e.commitReplyTo) > 0 {
		// Deterministic send order keeps simulations replayable. The index
		// buffer is replica-owned scratch (commit-reply fan-outs run once per
		// slow-committed entry on the hot path).
		idxs := r.execIdxs[:0]
		for idx := range e.commitReplyTo {
			idxs = append(idxs, idx)
		}
		slices.Sort(idxs)
		for _, idx := range idxs {
			r.sendCommitReply(ctx, e, idx, e.commitReplyTo[idx])
		}
		r.execIdxs = idxs[:0]
		e.commitReplyTo = nil
	}
}

// ExecutedLog returns the sequence of finally executed commands with their
// instances, in execution order. Test/inspection helper: consistency checks
// compare these across replicas.
func (r *Replica) ExecutedLog() []ExecRecord { return append([]ExecRecord(nil), r.execLog...) }

// ExecRecord is one finally executed command.
type ExecRecord struct {
	Inst   types.InstanceID
	Pos    int // position within the instance's batch (0 when unbatched)
	Cmd    types.Command
	Result types.Result
}

// CommitCert is one committed instance's agreed ordering attributes.
// Inspection helper: the scenario harness compares certificates across
// replicas — two correct replicas committing the same instance with
// different dependency sets or sequence numbers is a safety violation.
type CommitCert struct {
	Inst      types.InstanceID
	Deps      types.InstanceSet
	Seq       types.SeqNumber
	CmdDigest types.Digest
}

// CommittedCerts returns the certificate of every retained instance that
// reached committed (or executed) status, in no particular order.
// Truncated slots are absent; callers intersect across replicas. Each
// certificate's dependency set is an independent copy, safe to hold across
// further protocol activity.
func (r *Replica) CommittedCerts() []CommitCert { return r.committedCerts(true) }

// CommittedCertsShared is CommittedCerts without the per-certificate
// dependency-set clones: Deps alias the live log and must only be read, and
// only before the replica processes further messages. The scenario matrix
// compares certificates across every replica of every cell each run, where
// the clones dominated the check's cost.
func (r *Replica) CommittedCertsShared() []CommitCert { return r.committedCerts(false) }

func (r *Replica) committedCerts(cloneDeps bool) []CommitCert {
	total := 0
	for i := 0; i < r.n; i++ {
		total += len(r.log.space(types.ReplicaID(i)).entries)
	}
	out := make([]CommitCert, 0, total)
	for i := 0; i < r.n; i++ {
		sp := r.log.space(types.ReplicaID(i))
		for _, e := range sp.entries {
			if e.status < StatusCommitted {
				continue
			}
			deps := e.deps
			if cloneDeps {
				deps = deps.Clone()
			}
			out = append(out, CommitCert{
				Inst:      e.inst,
				Deps:      deps,
				Seq:       e.seq,
				CmdDigest: e.cmdDigest,
			})
		}
	}
	return out
}
