package core

import (
	"sync"

	"ezbft/internal/graph"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// This file implements the deterministic parallel executor: final execution
// of linearized closures scheduled as a level-ordered DAG over ExecWorkers
// goroutines, instead of the serial walk in exec.go. It is enabled only when
// ExecWorkers > 1 AND the application implements
// types.ConcurrentApplication; otherwise replicas keep the exact serial
// path, untouched.
//
// The scheduling granule a pass hands the executor is a batch: the
// consecutive executable closures of one tryExecute pass, accumulated via
// addClosure and run together by flush. Batching matters because distinct
// closures are dependency-independent by construction — at low contention a
// backlog is mostly small closures, and executing them one at a time would
// leave the workers idle; scheduled together their units share levels.
// Closures may share entries (two roots reaching one dependency): the first
// closure schedules the shared entry, later closures exclude it exactly
// where the serial walk would see it StatusExecuted.
//
// # Determinism argument
//
// Every observable of the serial path — final results, the executed memo,
// executedTs watermarks, execLog order, entry statuses, checkpoint execution
// marks, and commit-reply send order (including simulated virtual-time
// charges) — is reproduced byte-identically at any worker count. The
// schedule is split into three phases per batch:
//
//  1. Resolution (serial). Closure by closure, the linearized order from
//     graph.Linearize is walked exactly as the serial path would, and each
//     command is resolved to an action: no-op, memo hit (exactly-once
//     duplicate), base-timestamp skip (state-transfer snapshot already
//     reflects it), or execute. The batch-local `claimed` set predicts
//     in-batch memo writes: a duplicate of a command that an earlier
//     position of the batch will execute resolves to a memo hit, exactly as
//     it would serially. Only this phase consults replica state, so
//     resolution is independent of scheduling.
//
//  2. Execution (parallel). Only commands resolved to "execute" reach the
//     application, grouped into dependency levels: each SCC of the closure
//     (one "unit") sits one level above the deepest unit it depends on.
//     Units on the same level form an antichain of the condensation — no
//     dependency path connects them. As a second, independent guard (the
//     dependency sets are Byzantine-influenced inputs; a lying participant
//     can under-approximate them), levels are additionally raised by
//     declared footprints: two units whose commands interfere per
//     types.Command.Interferes (overlapping keys, not commutative) are
//     forced onto distinct levels even if no dependency edge connects them.
//     Units that share a level therefore have disjoint footprints or
//     commute, which is exactly what types.ConcurrentApplication requires
//     for concurrent PromoteFinal calls to be order-independent. A worker
//     owns each unit it claims end to end, applying the unit's commands
//     sequentially in serial order (SCC members are mutually dependent, so
//     they interfere and must never run concurrently with each other);
//     workers do nothing but call PromoteFinal and store results in the
//     commands' slots. Levels run in ascending order with a full join
//     between levels and after the last one — no worker outlives the
//     handler invocation.
//
//  3. Bookkeeping (serial). The batch's item list is walked again in the
//     exact serial order: virtual execution costs are charged (at the point
//     the serial path would charge them, which keeps simulated timestamps —
//     and so every simulated figure — identical at any worker count), memo
//     entries are written, executedTs/execLog/results are recorded via the
//     same recordFinal/finishEntry helpers the serial path uses, and commit
//     replies are sent in the same sorted order.
//
// Memo reads in phase 3 are always satisfied: a memo-hit consumer appears
// after its producer in the serial order (phase 1 claims in that order), and
// phase 3 performs the producer's memo write before reaching the consumer.
//
// Batch boundaries never reorder Context effects relative to the serial
// walk: tryExecute flushes the accumulated batch before arming any
// dependency-wait timer, so the sequence of charges, sends, and timer
// operations a pass produces is identical to the serial path's.
type parExecutor struct {
	workers int
	app     types.ConcurrentApplication

	// Per-batch scratch, reused across batches. A batch accumulates the
	// consecutive executable closures of one tryExecute pass (addClosure)
	// and runs them through phases 2 and 3 together (flush): independent
	// closures have no dependency edges between them, so their units share
	// levels — that cross-closure width is where low-contention workloads
	// get their parallelism. The accumulation never reorders context
	// effects: flush runs before anything else in the pass touches the
	// Context (see tryExecute), so charges, sends, and timer arming happen
	// in the exact serial sequence.
	items       []execItem
	units       []execUnit
	unitOf      map[types.InstanceID]int
	keyLvl      map[types.Key][nOpClasses]int
	claimed     map[cmdKey]struct{}
	byLevel     [][]int32 // unit indices per level (index = level-1)
	maxLvl      int
	serialFloor int // raised past units holding unknown-footprint commands
}

// execAction is a command's resolved fate for one pass.
type execAction uint8

const (
	actExec execAction = iota // run PromoteFinal on a worker
	actNoop                   // distinguished no-op: Result{OK: true}
	actMemo                   // exactly-once duplicate: reuse the memoized result
	actBase                   // at/below the state-transfer base timestamp: skip
)

// execItem is one command of the pass list, in serial linear order.
type execItem struct {
	e    *entry
	cmd  types.Command
	fp   []types.Key // declared footprint (actExec only)
	pos  int         // batch position within e
	unit int32       // index into units
	act  execAction
	last bool // final command of its entry: finishEntry after bookkeeping
	res  types.Result
}

// execUnit is one SCC of the closure, the scheduling granule: a worker owns
// the whole unit and applies its commands sequentially in serial order (SCC
// members are mutually dependent — they interfere by construction — so they
// must never run concurrently with each other). Parallelism is across units
// of the same level, which are interference-free by the phase-1 raising.
type execUnit struct {
	level      int
	start, end int32 // the unit's item range within items
}

// opClass buckets operations for footprint interference tracking; two
// commands on a shared key may share a level only if their classes do not
// interfere (see opClassesInterfere, which mirrors types.Command.Interferes
// restricted to a common key).
const (
	opClassGet = iota
	opClassPut
	opClassIncr
	opClassOther
	nOpClasses
)

func opClassOf(op types.Op) int {
	switch op {
	case types.OpGet:
		return opClassGet
	case types.OpPut:
		return opClassPut
	case types.OpIncr:
		return opClassIncr
	default:
		return opClassOther
	}
}

// opClassesInterfere mirrors types.Command.Interferes for two non-noop
// commands on the same key: GETs commute with GETs and INCRs with INCRs;
// everything else interferes (TestOpClassesMatchInterferes pins the
// equivalence).
func opClassesInterfere(a, b int) bool {
	if a == b && (a == opClassGet || a == opClassIncr) {
		return false
	}
	return true
}

func newParExecutor(workers int, app types.ConcurrentApplication) *parExecutor {
	return &parExecutor{
		workers:     workers,
		app:         app,
		unitOf:      make(map[types.InstanceID]int),
		keyLvl:      make(map[types.Key][nOpClasses]int),
		claimed:     make(map[cmdKey]struct{}),
		serialFloor: 1,
	}
}

// claimedInst reports whether an instance was already scheduled by an
// earlier closure of the current batch (its entry is still StatusCommitted
// because bookkeeping is deferred to flush, but it must not be scheduled
// again — the serial path would see it StatusExecuted).
func (x *parExecutor) claimedInst(inst types.InstanceID) bool {
	_, ok := x.unitOf[inst]
	return ok
}

// addClosure runs phase 1 — serial resolution and level assignment — for
// one linearized closure, appending its units and items to the current
// batch. order/spans come from the replica's dependency graph
// (graph.Linearize) and are consumed before the graph is touched again.
// Entries claimed by an earlier closure of the batch were excluded from the
// graph by the caller; dependency edges onto them still raise levels via
// unitOf, which spans the whole batch.
func (x *parExecutor) addClosure(r *Replica, order []types.InstanceID, spans []graph.Span) {
	for _, sp := range spans {
		unitIdx := len(x.units)
		itemStart := len(x.items)
		lvl := x.serialFloor
		unknownFootprint := false
		for _, inst := range order[sp.Start:sp.End] {
			e := r.log.get(inst)
			if e == nil || e.status != StatusCommitted {
				continue // same guard as the serial walk
			}
			// Dependency raising: one level above every earlier unit a
			// member depends on. Linearize's inverse topological order
			// guarantees cross-unit dependencies point to earlier units;
			// same-unit (same-SCC) edges don't raise.
			for dep := range e.deps {
				if u, ok := x.unitOf[dep]; ok && u != unitIdx && x.units[u].level >= lvl {
					lvl = x.units[u].level + 1
				}
			}
			x.unitOf[inst] = unitIdx
			for i := 0; i < e.nCmds(); i++ {
				cmd := e.cmdAt(i)
				it := execItem{e: e, cmd: cmd, pos: i, unit: int32(unitIdx)}
				key := cmdKey{cmd.Client, cmd.Timestamp}
				_, claimed := x.claimed[key]
				_, memoized := r.executed[key]
				switch {
				case cmd.IsNoop():
					it.act = actNoop
				case claimed || memoized:
					it.act = actMemo
				case cmd.Timestamp <= r.baseTs[cmd.Client]:
					it.act = actBase // writes no memo serially either
				default:
					it.act = actExec
					x.claimed[key] = struct{}{}
					it.fp = x.app.Footprint(cmd)
					if len(it.fp) == 0 {
						unknownFootprint = true
					} else {
						// Footprint raising: above every earlier unit that
						// touched a shared key with an interfering op class.
						c := opClassOf(cmd.Op)
						for _, k := range it.fp {
							kl := x.keyLvl[k]
							for oc := 0; oc < nOpClasses; oc++ {
								if kl[oc] >= lvl && opClassesInterfere(c, oc) {
									lvl = kl[oc] + 1
								}
							}
						}
					}
				}
				x.items = append(x.items, it)
			}
			x.items[len(x.items)-1].last = true
		}
		if len(x.items) == itemStart {
			continue // every member skipped: no unit to schedule
		}
		if unknownFootprint {
			// A command with an undeclared footprint may touch anything:
			// serialize its unit against every earlier and later unit.
			if x.maxLvl >= lvl {
				lvl = x.maxLvl + 1
			}
			x.serialFloor = lvl + 1
		}
		x.units = append(x.units, execUnit{level: lvl, start: int32(itemStart), end: int32(len(x.items))})
		if lvl > x.maxLvl {
			x.maxLvl = lvl
		}
		// Publish the unit's footprint at its final level.
		for idx := itemStart; idx < len(x.items); idx++ {
			it := &x.items[idx]
			if it.act != actExec {
				continue
			}
			c := opClassOf(it.cmd.Op)
			for _, k := range it.fp {
				kl := x.keyLvl[k]
				if kl[c] < lvl {
					kl[c] = lvl
					x.keyLvl[k] = kl
				}
			}
		}
	}
}

// flush runs phases 2 and 3 over the accumulated batch and resets the
// executor for the next one. A no-op on an empty batch.
func (x *parExecutor) flush(ctx proc.Context, r *Replica) {
	if len(x.items) == 0 {
		return
	}

	// --- Phase 2: parallel level execution ---
	maxLvl := x.maxLvl
	if cap(x.byLevel) < maxLvl {
		x.byLevel = make([][]int32, maxLvl)
	}
	x.byLevel = x.byLevel[:maxLvl]
	for l := range x.byLevel {
		x.byLevel[l] = x.byLevel[l][:0]
	}
	for u := range x.units {
		x.byLevel[x.units[u].level-1] = append(x.byLevel[x.units[u].level-1], int32(u))
	}
	for _, bucket := range x.byLevel {
		x.runLevel(bucket)
		r.stats.ExecLevels++
		if len(bucket) > 1 {
			for _, u := range bucket {
				for idx := x.units[u].start; idx < x.units[u].end; idx++ {
					if x.items[idx].act == actExec {
						r.stats.ParallelCmds++
					}
				}
			}
		}
	}
	r.stats.ParallelClosures++

	// --- Phase 3: serial bookkeeping in exact serial order ---
	for idx := range x.items {
		it := &x.items[idx]
		var res types.Result
		switch it.act {
		case actNoop, actBase:
			res = types.Result{OK: true}
		case actMemo:
			// Present by construction: the producer precedes this item in
			// serial order (phase 1 claims in that order) and wrote the memo
			// earlier in this loop, or it predates the pass entirely.
			res = r.executed[cmdKey{it.cmd.Client, it.cmd.Timestamp}]
		case actExec:
			r.cfg.Costs.ChargeExecute(ctx)
			res = it.res
			r.executed[cmdKey{it.cmd.Client, it.cmd.Timestamp}] = res
		}
		r.recordFinal(it.e, it.pos, it.cmd, res)
		if it.last {
			r.finishEntry(ctx, it.e)
		}
	}

	// Reset for the next batch. clear(items) also drops entry/footprint
	// references, so an idle replica doesn't pin freed log entries through
	// the scratch's capacity.
	clear(x.items)
	x.items = x.items[:0]
	x.units = x.units[:0]
	clear(x.unitOf)
	clear(x.keyLvl)
	clear(x.claimed)
	x.maxLvl = 0
	x.serialFloor = 1
}

// runLevel applies every unit of one level, fanning units out across the
// worker budget. A worker owns each unit it claims end to end, applying the
// unit's executable commands sequentially in serial order (SCC members
// interfere with each other and must not run concurrently); commands store
// results into their own item slots. The full join before returning is what
// confines all concurrency to this handler invocation.
func (x *parExecutor) runLevel(bucket []int32) {
	n := len(bucket)
	switch {
	case n == 0:
		return
	case n == 1 || x.workers <= 1:
		for _, u := range bucket {
			x.runUnit(u)
		}
		return
	}
	w := x.workers
	if w > n {
		w = n
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for j := 0; j < w; j++ {
		go func(j int) {
			defer wg.Done()
			for k := j; k < n; k += w {
				x.runUnit(bucket[k])
			}
		}(j)
	}
	wg.Wait()
}

// runUnit applies one unit's executable commands in serial order.
func (x *parExecutor) runUnit(u int32) {
	for idx := x.units[u].start; idx < x.units[u].end; idx++ {
		it := &x.items[idx]
		if it.act == actExec {
			it.res = x.app.PromoteFinal(it.cmd)
		}
	}
}
