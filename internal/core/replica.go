package core

import (
	"time"

	"ezbft/internal/codec"
	"ezbft/internal/engine"
	"ezbft/internal/graph"
	"ezbft/internal/proc"
	"ezbft/internal/types"
)

// cmdKey identifies a client request for exactly-once bookkeeping.
type cmdKey struct {
	client types.ClientID
	ts     uint64
}

// Replica is one ezBFT replica: command-leader for its own clients'
// requests, participant for every other replica's instance space, and
// executor of the committed dependency graph. It implements proc.Process.
type Replica struct {
	cfg ReplicaConfig
	n   int
	f   int

	log  *cmdLog
	deps *depIndex
	// nextSlot is the next free slot in this replica's own instance space.
	nextSlot uint64
	// owners tracks the current owner number of every instance space.
	owners []types.OwnerNumber

	// instByCmd maps a client request to the instance(s) ordering it.
	instByCmd map[cmdKey]types.InstanceID
	// replyCache keeps the last SPECREPLY sent per request, for
	// retransmission on retries (paper step 4.3).
	replyCache map[cmdKey]*SpecReply
	// highestTs tracks the highest timestamp seen per client (the paper's
	// "Nitpick" in step 2). Duplicate detection uses instByCmd so that
	// open-loop clients may pipeline several timestamps.
	highestTs map[types.ClientID]uint64

	// pendingExec holds committed-but-not-finally-executed entries.
	pendingExec map[types.InstanceID]*entry
	// executed memoizes final results per request for exactly-once
	// execution across duplicate instances (re-proposals after owner
	// changes).
	executed map[cmdKey]types.Result

	// batcher accumulates verified requests this replica, as
	// command-leader, will order in its next instance (BatchSize > 1).
	batcher *engine.Batcher[cmdKey, *Request]

	// deferredCommits buffers commit decisions whose certificate carries no
	// embedded SPECORDER (evidence-slimmed batched replies) and whose
	// instance this replica has not spec-ordered yet; they are re-applied
	// when the SPECORDER arrives.
	deferredCommits map[types.InstanceID][]deferredCommit

	// ckpt is the engine-level checkpoint tracker (nil-safe; disabled when
	// CheckpointInterval is 0). See checkpoint.go.
	ckpt *engine.CheckpointTracker
	// executedTs tracks the highest finally-executed timestamp per client,
	// exported in state transfers for cross-transfer exactly-once semantics.
	executedTs map[types.ClientID]uint64
	// baseTs marks, after a catch-up install, the per-client timestamps the
	// installed snapshot already reflects; duplicate instances of those
	// commands are skipped at final execution.
	baseTs map[types.ClientID]uint64
	// catchupPending guards against concurrent state-transfer requests;
	// catchupAttempts rotates the request target across checkpoint voters;
	// catchupRetries counts timer-driven re-issues of the current episode
	// (reset on install) and drives the retry backoff.
	catchupPending  bool
	catchupAttempts uint64
	catchupRetries  int
	// catchupResps buffers validated wholesale CATCHUP-RESPs per responder
	// until f+1 distinct responders agree on the transfer (see
	// handleCatchupResp); it survives retry rounds so agreement can form
	// across voter-window rotations, and clears on every install.
	catchupResps map[types.ReplicaID]*CatchupResp
	// catchupHeard notes that the current round produced responses that
	// merely failed to agree (live-state skew between honest responders
	// under load) rather than silence; such rounds retry at the base delay
	// instead of growing the backoff, so agreement lands promptly once the
	// system quiesces.
	catchupHeard bool

	// Durability state (see durable.go). recovering is set while Init
	// rebuilds the replica from its store: it suppresses outbound messages,
	// WAL re-appends, and snapshot cuts. walDirty marks appends awaiting
	// the handler-end group sync; the first store error is retained in
	// walErr and permanently degrades the replica to non-durable.
	recovering bool
	walDirty   bool
	walErr     error

	// resendWait tracks RESENDREQs we forwarded and are waiting on
	// (paper step 4.3): cmdKey → armed timer.
	resendWait map[cmdKey]*resendState
	// depWait tracks dependency instances we are waiting on before final
	// execution; expiry triggers an owner change for the dependency's
	// space.
	depWait  map[types.InstanceID]bool
	timerSeq uint64
	timerAct map[proc.TimerID]func(ctx proc.Context)

	oc ownerChangeState

	// execLog records finally executed commands in execution order, for
	// cross-replica consistency checks.
	execLog []ExecRecord

	// byzSkewed / byzLag drive the equivocating-leader fault injection.
	byzSkewed bool
	byzLag    uint64

	// peers lists every other replica's address, precomputed for broadcasts.
	peers []types.NodeID

	// execPending / execBlocked are per-pass scratch for tryExecute, and
	// execSeen / execStack / execClosure / execBlockers per-call scratch for
	// depClosure — reused across commits so contended workloads (which
	// re-run the pass over a large stuck backlog on every commit arrival)
	// do not rebuild them each time. execGraph and execIdxs extend the same
	// idea to the closure's dependency graph and the commit-reply index sort.
	execPending  []types.InstanceID
	execBlocked  map[types.InstanceID]bool
	execSeen     map[types.InstanceID]bool
	execStack    []*entry
	execClosure  []*entry
	execBlockers []types.InstanceID
	execGraph    *graph.DepGraph
	execIdxs     []int

	// exec is the deterministic parallel executor, non-nil only when
	// ExecWorkers > 1 and the application implements
	// types.ConcurrentApplication; nil keeps the serial path (see
	// executor.go).
	exec *parExecutor

	stats ReplicaStats
}

// resendState is one outstanding RESENDREQ forward.
type resendState struct {
	req   *Request
	timer proc.TimerID
}

// deferredCommit is one commit decision waiting for its SPECORDER.
type deferredCommit struct {
	deps       types.InstanceSet
	seq        types.SeqNumber
	from       *SpecReply
	fast       bool
	needsReply bool
	replyTo    types.ClientID
	commit     *Commit // the slow-path COMMIT (nil for fast commits)
}

// ReplicaStats exposes protocol counters for tests and experiments.
type ReplicaStats struct {
	Ordered         uint64 // commands this replica led
	SpecExecuted    uint64
	FastCommits     uint64
	SlowCommits     uint64
	FinalExecutions uint64
	OwnerChanges    uint64
	DroppedInvalid  uint64 // messages rejected by validation
	DeferredCommits uint64 // slim commit certificates parked for their SPECORDER

	// Log-lifecycle observables (checkpointing / GC / state transfer).
	Checkpoints       uint64 // stable checkpoints established
	TruncatedEntries  uint64 // log entries freed by truncation
	LowWaterMark      uint64 // smallest stable mark across spaces with one
	CatchupsServed    uint64 // state transfers served to lagging peers
	CatchupsInstalled uint64 // state transfers installed locally (incl. tails)
	TailsInstalled    uint64 // of those, incremental tail merges (no snapshot)
	CatchupMismatches uint64 // responders disagreeing with the installed f+1 majority

	// Durability observables (nonzero only with a configured store).
	WALRecords uint64 // records appended to the write-ahead log
	Recoveries uint64 // restarts that rebuilt state from the store
	WALFailed  bool   // a store error degraded the replica to non-durable

	// Batch-size observables (adaptive sizing): batches this leader
	// flushed, requests across them (BatchedRequests/Batches = mean batch),
	// and the largest single batch.
	Batches         uint64
	BatchedRequests uint64
	MaxBatch        int

	// Parallel-executor observables (ExecWorkers > 1 with a
	// ConcurrentApplication; all zero on the serial path): closures
	// scheduled as level-ordered DAGs, dependency levels executed across
	// them, and commands that ran on a level shared with at least one other
	// command (the actually-parallel work).
	ParallelClosures uint64
	ExecLevels       uint64
	ParallelCmds     uint64
}

var _ proc.Process = (*Replica)(nil)

// NewReplica constructs a replica from its configuration.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Replica{
		cfg:             cfg,
		n:               cfg.N,
		f:               F(cfg.N),
		log:             newCmdLog(cfg.N),
		deps:            newDepIndex(),
		nextSlot:        1,
		owners:          make([]types.OwnerNumber, cfg.N),
		instByCmd:       make(map[cmdKey]types.InstanceID),
		replyCache:      make(map[cmdKey]*SpecReply),
		highestTs:       make(map[types.ClientID]uint64),
		pendingExec:     make(map[types.InstanceID]*entry),
		executed:        make(map[cmdKey]types.Result),
		deferredCommits: make(map[types.InstanceID][]deferredCommit),
		executedTs:      make(map[types.ClientID]uint64),
		resendWait:      make(map[cmdKey]*resendState),
		depWait:         make(map[types.InstanceID]bool),
		timerAct:        make(map[proc.TimerID]func(ctx proc.Context)),
		catchupResps:    make(map[types.ReplicaID]*CatchupResp),
	}
	r.ckpt = engine.NewCheckpointTracker(cfg.N, cfg.CheckpointInterval)
	for i := range r.owners {
		r.owners[i] = types.OwnerNumber(i)
	}
	for i := 0; i < cfg.N; i++ {
		if types.ReplicaID(i) != cfg.Self {
			r.peers = append(r.peers, types.ReplicaNode(types.ReplicaID(i)))
		}
	}
	r.execBlocked = make(map[types.InstanceID]bool)
	r.execGraph = graph.NewDepGraph()
	if cfg.ExecWorkers > 1 {
		if capp, ok := cfg.App.(types.ConcurrentApplication); ok {
			r.exec = newParExecutor(cfg.ExecWorkers, capp)
		}
	}
	r.batcher = engine.NewBatcher[cmdKey, *Request](cfg.BatchSize, cfg.BatchDelay, r, r.flushBatch)
	r.batcher.SetAdaptive(cfg.BatchAdaptive)
	r.oc.init()
	return r, nil
}

// ID implements proc.Process.
func (r *Replica) ID() types.NodeID { return types.ReplicaNode(r.cfg.Self) }

// Stats returns a snapshot of the replica's counters, including the batch
// sizes the (possibly adaptive) batcher actually produced.
func (r *Replica) Stats() ReplicaStats {
	s := r.stats
	bs := r.batcher.Stats()
	s.Batches = bs.Flushes
	s.BatchedRequests = bs.Items
	s.MaxBatch = bs.MaxBatch
	cs := r.ckpt.Stats()
	s.Checkpoints = cs.Checkpoints
	s.LowWaterMark = cs.LowWaterMark
	s.WALFailed = r.walErr != nil
	return s
}

// BatcherStats returns the leader-side batch-size observables.
func (r *Replica) BatcherStats() engine.BatcherStats { return r.batcher.Stats() }

// Init implements proc.Process. A replica whose store holds state from a
// previous incarnation rebuilds itself from it before any delivery (see
// durable.go).
func (r *Replica) Init(ctx proc.Context) {
	if r.cfg.Store != nil && !r.cfg.Store.Empty() {
		r.recoverFromStore(ctx)
	}
}

// OnTimer implements proc.Process.
func (r *Replica) OnTimer(ctx proc.Context, id proc.TimerID) {
	if fn, ok := r.timerAct[id]; ok {
		delete(r.timerAct, id)
		fn(ctx)
	}
	r.walSync()
}

// afterTimer arms a one-shot timer bound to fn.
func (r *Replica) afterTimer(ctx proc.Context, d time.Duration, fn func(ctx proc.Context)) proc.TimerID {
	r.timerSeq++
	id := proc.TimerID(r.timerSeq)
	r.timerAct[id] = fn
	ctx.SetTimer(id, d)
	return id
}

// AfterTimer implements engine.BatchHost.
func (r *Replica) AfterTimer(ctx proc.Context, d time.Duration, fn func(ctx proc.Context)) proc.TimerID {
	return r.afterTimer(ctx, d, fn)
}

// DisarmTimer implements engine.BatchHost.
func (r *Replica) DisarmTimer(ctx proc.Context, id proc.TimerID) {
	delete(r.timerAct, id)
	ctx.CancelTimer(id)
}

// Receive implements proc.Process.
func (r *Replica) Receive(ctx proc.Context, from types.NodeID, msg codec.Message) {
	if r.cfg.Behavior != nil && !r.cfg.Behavior.Inbound(ctx, from, msg) {
		return
	}
	switch m := msg.(type) {
	case *Request:
		r.handleRequest(ctx, from, m)
	case *SpecOrder:
		r.handleSpecOrder(ctx, from, m)
	case *CommitFast:
		r.handleCommitFast(ctx, m)
	case *Commit:
		r.handleCommit(ctx, m)
	case *ResendReq:
		r.handleResendReq(ctx, m)
	case *StartOwnerChange:
		r.handleStartOwnerChange(ctx, m)
	case *OwnerChange:
		r.handleOwnerChange(ctx, m)
	case *NewOwnerMsg:
		r.handleNewOwner(ctx, m)
	case *POM:
		r.handlePOM(ctx, m)
	case *CheckpointMsg:
		r.handleCheckpoint(ctx, m)
	case *CatchupReq:
		r.handleCatchupReq(ctx, m)
	case *CatchupResp:
		r.handleCatchupResp(ctx, m)
	case *SOFetch:
		r.handleSOFetch(ctx, m)
	default:
		r.stats.DroppedInvalid++
	}
	r.walSync()
}

// send transmits a message unless the replica is byzantine-muted or
// rebuilding itself from its durable store (recovery re-runs handlers
// whose messages already went out in a previous incarnation).
func (r *Replica) send(ctx proc.Context, to types.NodeID, msg codec.Message) {
	if r.recovering {
		return
	}
	if r.cfg.Byzantine != nil && r.cfg.Byzantine.Mute {
		return
	}
	if r.cfg.Behavior != nil && !r.cfg.Behavior.Outbound(ctx, to, msg) {
		return
	}
	// Durability before dispatch: every record this handler appended so far
	// must be stable before a message derived from it reaches the wire — on
	// the live substrate ctx.Send writes the socket immediately, so syncing
	// only at handler end would let a SPECORDER/SPECREPLY/vote escape that a
	// power loss could then make this replica forget (see durable.go).
	r.walSync()
	ctx.Send(to, msg)
}

// broadcastReplicas sends to every other replica — one encode for all
// destinations on runtimes with an encode-once broadcast transport.
func (r *Replica) broadcastReplicas(ctx proc.Context, msg codec.Message) {
	if r.recovering {
		return
	}
	if r.cfg.Byzantine != nil && r.cfg.Byzantine.Mute {
		return
	}
	// Durability before dispatch — see send.
	r.walSync()
	if r.cfg.Behavior != nil {
		// Per-destination interception forfeits the encode-once fan-out;
		// acceptable on the adversarial replica only.
		for _, p := range r.peers {
			if r.cfg.Behavior.Outbound(ctx, p, msg) {
				ctx.Send(p, msg)
			}
		}
		return
	}
	proc.Broadcast(ctx, r.peers, msg)
}

// --- step 2: command-leader path ---

// handleRequest processes ⟨REQUEST, L, t, c⟩σc: either order it (we are the
// command-leader), resend a cached reply, or — for retry broadcasts —
// forward a RESENDREQ to the original leader (paper step 4.3).
func (r *Replica) handleRequest(ctx proc.Context, from types.NodeID, m *Request) {
	if !m.SigVerified() {
		// Unmarked (sim-delivered) requests are authenticated in-loop; a
		// transport-side verifier pool already checked marked ones.
		r.cfg.Costs.ChargeVerifyClient(ctx)
		if err := verifyBody(r.cfg.Auth, types.ClientNode(m.Cmd.Client), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	key := cmdKey{m.Cmd.Client, m.Cmd.Timestamp}

	// Exactly-once: a request we have already processed gets its cached
	// reply retransmitted (never re-ordered).
	if cached, ok := r.replyCache[key]; ok {
		r.cfg.Costs.ChargeSign(ctx)
		r.send(ctx, types.ClientNode(m.Cmd.Client), cached)
		return
	}

	if m.Orig != noOrig && m.Orig != r.cfg.Self {
		// Retry broadcast for another leader's request.
		r.handleRetryForOther(ctx, m)
		return
	}

	// We are the command-leader for this request.
	if r.log.space(r.cfg.Self).frozen || r.owners[r.cfg.Self].OwnerOf(r.n) != r.cfg.Self {
		// We lost ownership of our own space (we were suspected); we can no
		// longer order commands. The client's retry broadcast will reach a
		// replica that can.
		r.stats.DroppedInvalid++
		return
	}
	if r.batcher.Queued(key) {
		return // already waiting in the current batch
	}
	if m.Cmd.Timestamp > r.highestTs[m.Cmd.Client] {
		r.highestTs[m.Cmd.Client] = m.Cmd.Timestamp
	}
	r.batcher.Add(ctx, key, m)
}

// flushBatch opens one instance for everything the batcher accumulated.
// Ownership is re-checked at flush time: if this replica was suspected
// while the batch accumulated, the requests are dropped and the clients'
// retry broadcasts re-drive them at a live leader.
func (r *Replica) flushBatch(ctx proc.Context, reqs []*Request) {
	if r.log.space(r.cfg.Self).frozen || r.owners[r.cfg.Self].OwnerOf(r.n) != r.cfg.Self {
		r.stats.DroppedInvalid += uint64(len(reqs))
		return
	}
	r.leadBatch(ctx, reqs, r.cfg.Self)
}

// leadCommand orders a single request (the unbatched paper flow).
func (r *Replica) leadCommand(ctx proc.Context, m *Request, spaceID types.ReplicaID) {
	r.leadBatch(ctx, []*Request{m}, spaceID)
}

// leadBatch assigns the next instance in `space` to a batch of requests,
// collects the union of their dependencies, assigns the sequence number,
// speculatively executes, broadcasts one SPECORDER — one signature, one
// dependency set, one wire frame for the whole batch — and answers every
// client (paper steps 2–3 for the leader itself).
func (r *Replica) leadBatch(ctx proc.Context, reqs []*Request, spaceID types.ReplicaID) {
	inst := types.InstanceID{Space: spaceID, Slot: r.nextSlot}
	r.nextSlot++

	digests := make([]types.Digest, len(reqs))
	for i, m := range reqs {
		digests[i] = m.Cmd.Digest()
	}
	batchDigest := BatchDigest(digests)

	deps := types.NewInstanceSet()
	var maxSeq types.SeqNumber
	for _, m := range reqs {
		d, s := r.deps.collect(m.Cmd, inst)
		deps.Union(d)
		if s > maxSeq {
			maxSeq = s
		}
	}
	seq := maxSeq + 1

	sp := r.log.space(spaceID)
	sp.extendHash(inst, batchDigest)
	so := &SpecOrder{
		Owner:     r.owners[spaceID],
		Inst:      inst,
		Deps:      deps,
		Seq:       seq,
		LogHash:   sp.logHash,
		CmdDigest: batchDigest,
		// Clone, not *reqs[0]: a retry-broadcast request is one decoded
		// value shared with every replica's verifier pool on the mesh, and a
		// plain struct copy would race with their atomic marks.
		Req: reqs[0].Clone(),
	}
	if len(reqs) > 1 {
		so.Batch = make([]Request, len(reqs)-1)
		for i, m := range reqs[1:] {
			so.Batch[i] = m.Clone()
		}
	}
	r.cfg.Costs.ChargeAdmitInstance(ctx)
	r.cfg.Costs.ChargeSign(ctx)
	so.Sig = signBody(r.cfg.Auth, so)

	e := &entry{
		inst:      inst,
		owner:     so.Owner,
		cmd:       reqs[0].Cmd,
		cmdDigest: batchDigest,
		deps:      deps.Clone(),
		seq:       seq,
		status:    StatusSpecOrdered,
	}
	if len(reqs) > 1 {
		e.extra = make([]types.Command, len(reqs)-1)
		for i, m := range reqs[1:] {
			e.extra[i] = m.Cmd
		}
		e.cmdDigests = digests
	}
	e.so = so
	r.log.put(e)
	for _, m := range reqs {
		r.deps.update(inst, m.Cmd, seq)
		r.instByCmd[cmdKey{m.Cmd.Client, m.Cmd.Timestamp}] = inst
	}
	r.stats.Ordered += uint64(len(reqs))
	// Durability point: the proposal must survive a crash before any peer
	// or client can act on it.
	r.walHist(walOrderKind, e)

	if byz := r.cfg.Byzantine; byz != nil && byz.EquivocateInstances {
		r.equivocate(ctx, so)
	} else {
		r.broadcastReplicas(ctx, so)
	}

	// The leader speculatively executes and answers the clients like any
	// other replica (it is one of the 3f+1 fast-quorum members).
	r.specExecuteAndReply(ctx, e, so)
	for _, m := range reqs {
		r.resolveResendWait(cmdKey{m.Cmd.Client, m.Cmd.Timestamp}, spaceID)
	}
}

// equivocate is the byzantine command-leader behaviour. A naive "different
// slot to different replicas" is rejected by the contiguity check
// (I = maxI+1), so the leader first desynchronizes the halves: the first
// request's SPECORDER is withheld from half B, leaving half B one slot
// behind. Every later request is then signed twice — at the honest slot for
// half A and at the lagging slot for half B — and both variants pass each
// half's validation. Clients detect the differing instance numbers through
// the SPECORDERs embedded in the SPECREPLYs (paper step 4.4) and emit a POM.
func (r *Replica) equivocate(ctx proc.Context, honest *SpecOrder) {
	var halfA, halfB []types.ReplicaID
	for i := 0; i < r.n; i++ {
		rid := types.ReplicaID(i)
		if rid == r.cfg.Self {
			continue
		}
		if len(halfA) < (r.n-1)/2 {
			halfA = append(halfA, rid)
		} else {
			halfB = append(halfB, rid)
		}
	}
	if !r.byzSkewed {
		// Starve half B of this SPECORDER to create the slot skew.
		r.byzSkewed = true
		r.byzLag = honest.Inst.Slot
		for _, rid := range halfA {
			r.send(ctx, types.ReplicaNode(rid), honest)
		}
		return
	}
	alt := &SpecOrder{
		Owner:     honest.Owner,
		Inst:      types.InstanceID{Space: honest.Inst.Space, Slot: r.byzLag},
		Deps:      honest.Deps.Clone(),
		Seq:       honest.Seq,
		LogHash:   honest.LogHash,
		CmdDigest: honest.CmdDigest,
		Req:       honest.Req,
		Batch:     honest.Batch,
	}
	r.byzLag++
	r.cfg.Costs.ChargeSign(ctx)
	alt.Sig = signBody(r.cfg.Auth, alt)
	for _, rid := range halfA {
		r.send(ctx, types.ReplicaNode(rid), honest)
	}
	for _, rid := range halfB {
		r.send(ctx, types.ReplicaNode(rid), alt)
	}
}

// handleRetryForOther implements paper step 4.3 at a non-leader replica:
// forward a RESENDREQ to the original leader and arm a timer; if the
// SPECORDER does not arrive in time, initiate an owner change. If the
// original leader's space has already been frozen, order the command in our
// own space instead (every replica has its own instance space it can use).
func (r *Replica) handleRetryForOther(ctx proc.Context, m *Request) {
	orig := m.Orig
	if orig < 0 || int(orig) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	key := cmdKey{m.Cmd.Client, m.Cmd.Timestamp}
	if r.log.space(orig).frozen || r.owners[orig].OwnerOf(r.n) != orig {
		// The faulty leader's space is already frozen; the client's retry
		// rotation will direct the request at a live leader, so nothing to
		// forward here.
		return
	}
	if _, waiting := r.resendWait[key]; waiting {
		return
	}
	fwd := m.Clone()
	rs := &resendState{req: m}
	rs.timer = r.afterTimer(ctx, r.cfg.ResendTimeout, func(ctx proc.Context) {
		if _, still := r.resendWait[key]; !still {
			return
		}
		delete(r.resendWait, key)
		r.initiateOwnerChange(ctx, orig)
	})
	r.resendWait[key] = rs
	r.send(ctx, types.ReplicaNode(orig), &ResendReq{Req: fwd, Replica: r.cfg.Self})
}

// resolveResendWait cancels a pending resend timer once the request has
// been ordered by the replica we were waiting on. Ordering by any other
// replica (retry rotation) does not clear the suspicion: per paper step
// 4.3, the timer waits for the original leader's SPECORDER specifically.
func (r *Replica) resolveResendWait(key cmdKey, orderedBy types.ReplicaID) {
	rs, ok := r.resendWait[key]
	if !ok || rs.req.Orig != orderedBy {
		return
	}
	delete(r.resendWait, key)
	delete(r.timerAct, rs.timer)
}

// handleResendReq processes ⟨RESENDREQ, m, Rj⟩ at the original leader: if
// the request is already ordered, retransmit its SPECORDER to the
// forwarder; otherwise order it now.
func (r *Replica) handleResendReq(ctx proc.Context, m *ResendReq) {
	key := cmdKey{m.Req.Cmd.Client, m.Req.Cmd.Timestamp}
	if r.batcher.Queued(key) {
		// The request is waiting in the current batch; flush now so the
		// forwarder (and its owner-change timer) sees the SPECORDER quickly.
		r.batcher.Flush(ctx)
	}
	if inst, ok := r.instByCmd[key]; ok {
		if e := r.log.get(inst); e != nil && e.so != nil {
			r.send(ctx, types.ReplicaNode(m.Replica), e.so)
		}
		return
	}
	if !m.Req.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ClientNode(m.Req.Cmd.Client), &m.Req, m.Req.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	if r.log.space(r.cfg.Self).frozen || r.owners[r.cfg.Self].OwnerOf(r.n) != r.cfg.Self {
		return
	}
	reqCopy := m.Req.Clone()
	r.leadCommand(ctx, &reqCopy, r.cfg.Self)
}

// --- step 3: participant path ---

// handleSpecOrder processes a command-leader's proposal: validate, update
// dependencies and sequence number from the local log, speculatively
// execute, and reply to the client (paper step 3). Out-of-order proposals
// are buffered until the instance space is contiguous.
func (r *Replica) handleSpecOrder(ctx proc.Context, from types.NodeID, m *SpecOrder) {
	spaceID := m.Inst.Space
	if spaceID < 0 || int(spaceID) >= r.n {
		r.stats.DroppedInvalid++
		return
	}
	sp := r.log.space(spaceID)
	if sp.frozen || sp.suspended || m.Owner != r.owners[spaceID] {
		r.stats.DroppedInvalid++
		return
	}
	owner := m.Owner.OwnerOf(r.n)
	digests := make([]types.Digest, m.BatchSize())
	if m.SigVerified() {
		// A transport-side verifier pool already checked the signatures in
		// parallel; only the digest binding below remains.
		for i := range digests {
			digests[i] = m.ReqAt(i).Cmd.Digest()
		}
	} else {
		// One replica-signature verification per batch; the embedded client
		// requests are authenticated with the participant's own MAC-vector
		// entries (the paper's HMAC usage), which cost microseconds.
		// Batching amortizes the expensive check across the whole batch.
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ReplicaNode(owner), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
		for i := range digests {
			req := m.ReqAt(i)
			if err := verifyBody(r.cfg.Auth, types.ClientNode(req.Cmd.Client), req, req.Sig); err != nil {
				r.stats.DroppedInvalid++
				return
			}
			digests[i] = req.Cmd.Digest()
		}
	}
	// The signed batch digest must bind exactly the embedded requests.
	if m.CmdDigest != BatchDigest(digests) {
		r.stats.DroppedInvalid++
		return
	}

	// Paper step 3 validation: I must be the next slot in the leader's
	// space (maxI + 1). Later slots are buffered; earlier ones are
	// duplicates or equivocation and are dropped.
	next := sp.maxSlot + 1
	switch {
	case m.Inst.Slot == next:
		r.acceptSpecOrder(ctx, m, digests)
		// Drain any buffered successors.
		for {
			nxt, ok := sp.pending[sp.maxSlot+1]
			if !ok {
				break
			}
			delete(sp.pending, sp.maxSlot+1)
			r.acceptSpecOrder(ctx, nxt, nil)
		}
	case m.Inst.Slot > next:
		sp.pending[m.Inst.Slot] = m
	default:
		r.stats.DroppedInvalid++
	}
}

// acceptSpecOrder records a validated proposal and replies to its clients.
// digests carries the per-command digests handleSpecOrder already computed
// (nil for proposals drained from the out-of-order buffer, which recompute
// them).
func (r *Replica) acceptSpecOrder(ctx proc.Context, m *SpecOrder, digests []types.Digest) {
	if existing := r.log.get(m.Inst); existing != nil {
		return // already known (e.g., installed by a commit certificate)
	}

	// Update dependencies and sequence number from the local log (paper:
	// "updates the dependencies and sequence number according to its log"),
	// over every command of the batch.
	deps := m.Deps.Clone()
	seq := m.Seq
	for i := 0; i < m.BatchSize(); i++ {
		localDeps, localMax := r.deps.collect(m.ReqAt(i).Cmd, m.Inst)
		deps.Union(localDeps)
		if localMax+1 > seq {
			seq = localMax + 1
		}
	}
	if byz := r.cfg.Byzantine; byz != nil && byz.LieAboutDeps {
		// Fig 3 behaviour: claim no dependencies regardless of the log.
		deps = types.NewInstanceSet()
		seq = 1
	}

	e := &entry{
		inst:      m.Inst,
		owner:     m.Owner,
		cmd:       m.Req.Cmd,
		cmdDigest: m.CmdDigest,
		deps:      deps.Clone(),
		seq:       seq,
		status:    StatusSpecOrdered,
	}
	if len(m.Batch) > 0 {
		e.extra = make([]types.Command, len(m.Batch))
		for i := range m.Batch {
			e.extra[i] = m.Batch[i].Cmd
		}
		if digests == nil {
			digests = m.CmdDigests()
		}
		e.cmdDigests = digests
	}
	e.so = m
	r.log.put(e)
	for i := 0; i < m.BatchSize(); i++ {
		cmd := m.ReqAt(i).Cmd
		r.deps.update(m.Inst, cmd, seq)
		r.instByCmd[cmdKey{cmd.Client, cmd.Timestamp}] = m.Inst
		if cmd.Timestamp > r.highestTs[cmd.Client] {
			r.highestTs[cmd.Client] = cmd.Timestamp
		}
	}
	// Durability point: the acceptance must survive a crash before the
	// SPECREPLY vouches for it to the client.
	r.walHist(walOrderKind, e)
	r.specExecuteAndReply(ctx, e, m)
	for i := 0; i < m.BatchSize(); i++ {
		cmd := m.ReqAt(i).Cmd
		r.resolveResendWait(cmdKey{cmd.Client, cmd.Timestamp}, m.Inst.Space)
	}
	r.drainDeferredCommits(ctx, m.Inst)
}

// drainDeferredCommits applies the commit decisions that raced ahead of
// the instance's content (their evidence-slimmed certificates could not
// install the entry on their own). Called wherever the instance becomes
// known: the SPECORDER arriving, or a full-evidence certificate installing
// the entry.
func (r *Replica) drainDeferredCommits(ctx proc.Context, inst types.InstanceID) {
	dcs, ok := r.deferredCommits[inst]
	if !ok {
		return
	}
	delete(r.deferredCommits, inst)
	for _, dc := range dcs {
		ce := r.commitEntry(ctx, inst, dc.deps, dc.seq, dc.from, dc.needsReply, dc.replyTo)
		if dc.fast {
			r.stats.FastCommits++
		} else {
			r.stats.SlowCommits++
			if ce != nil {
				ce.clientCommit = dc.commit
			}
		}
	}
	r.tryExecute(ctx)
}

// specExecuteAndReply speculatively executes an entry's commands in batch
// order on the latest state and sends each command's SPECREPLY to its
// client. Evidence slimming: the full SPECORDER rides only in the
// BatchIdx-0 reply of a batched instance; the rest carry the signed SORef
// digest, so per-batch reply traffic is O(k) instead of O(k²) request
// bytes per replica.
func (r *Replica) specExecuteAndReply(ctx proc.Context, e *entry, so *SpecOrder) {
	batched := e.nCmds() > 1
	for i := 0; i < e.nCmds(); i++ {
		cmd := e.cmdAt(i)
		r.cfg.Costs.ChargeExecute(ctx)
		res := r.cfg.App.SpecExecute(cmd)
		e.setSpecResult(i, res)
		r.stats.SpecExecuted++

		reply := &SpecReply{
			Owner:     e.owner,
			Inst:      e.inst,
			Deps:      e.deps.Clone(),
			Seq:       e.seq,
			CmdDigest: e.digestAt(i),
			Client:    cmd.Client,
			Timestamp: cmd.Timestamp,
			Replica:   r.cfg.Self,
			Result:    res,
			Batched:   batched,
			BatchIdx:  uint32(i),
		}
		if batched {
			reply.SORef = e.cmdDigest
			if i == 0 {
				reply.SO = so
			}
		} else {
			reply.SO = so
		}
		r.cfg.Costs.ChargeSign(ctx)
		reply.Sig = signBody(r.cfg.Auth, reply)
		r.replyCache[cmdKey{cmd.Client, cmd.Timestamp}] = reply
		r.send(ctx, types.ClientNode(cmd.Client), reply)
	}
	e.specExecuted = true
}

// --- step 5: commit paths ---

// handleCommitFast processes ⟨COMMITFAST, c, I, CC⟩: validate the 3f+1
// matching SPECREPLY certificate, mark committed, and enqueue final
// execution. No reply is sent (the client already returned).
func (r *Replica) handleCommitFast(ctx proc.Context, m *CommitFast) {
	if len(m.Cert) < FastQuorum(r.n) {
		r.stats.DroppedInvalid++
		return
	}
	if !r.validateCert(ctx, m.Cert, m.Inst, FastQuorum(r.n), true) {
		r.stats.DroppedInvalid++
		return
	}
	first := m.Cert[0]
	if r.log.get(m.Inst) == nil && first.SO == nil {
		// Evidence-slimmed certificate for an instance whose SPECORDER has
		// not arrived yet: park the decision until it does.
		r.deferCommit(m.Inst, deferredCommit{deps: first.Deps, seq: first.Seq, from: first, fast: true})
		return
	}
	r.commitEntry(ctx, m.Inst, first.Deps, first.Seq, first, false, 0)
	r.stats.FastCommits++
	r.tryExecute(ctx)
	// This certificate may have installed the entry that parked slim
	// decisions were waiting for.
	if r.log.get(m.Inst) != nil {
		r.drainDeferredCommits(ctx, m.Inst)
	}
}

// handleCommit processes the slow-path ⟨COMMIT, c, I, D′, S′, CC⟩σc:
// adopt the client's combined dependencies and sequence number, invalidate
// the speculative result, and enqueue final execution; the COMMITREPLY is
// sent after final execution.
func (r *Replica) handleCommit(ctx proc.Context, m *Commit) {
	if !m.SigVerified() {
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(r.cfg.Auth, types.ClientNode(m.Client), m, m.Sig); err != nil {
			r.stats.DroppedInvalid++
			return
		}
	}
	if len(m.Cert) < SlowQuorum(r.n) {
		r.stats.DroppedInvalid++
		return
	}
	if !r.validateCert(ctx, m.Cert, m.Inst, SlowQuorum(r.n), false) {
		r.stats.DroppedInvalid++
		return
	}
	if r.log.get(m.Inst) == nil && m.Cert[0].SO == nil {
		r.deferCommit(m.Inst, deferredCommit{
			deps: m.Deps, seq: m.Seq, from: m.Cert[0],
			needsReply: true, replyTo: m.Client, commit: m,
		})
		return
	}
	e := r.commitEntry(ctx, m.Inst, m.Deps, m.Seq, m.Cert[0], true, m.Client)
	if e != nil {
		e.clientCommit = m
	}
	r.stats.SlowCommits++
	r.tryExecute(ctx)
	// This certificate may have installed the entry that parked slim
	// decisions were waiting for.
	if r.log.get(m.Inst) != nil {
		r.drainDeferredCommits(ctx, m.Inst)
	}
}

// maxDeferredPerInstance bounds the commit decisions parked per unknown
// instance: legitimately there are at most two (one fast, one slow) per
// client of the batch, and a batch holds at most MaxBatchSize clients.
// Every deferred decision is backed by a validated 2f+1 certificate, so
// the bound is a memory backstop, not a spam defense.
const maxDeferredPerInstance = 2 * MaxBatchSize

// deferCommit parks a validated commit decision that cannot be applied yet
// because its certificate is evidence-slimmed (no embedded SPECORDER) and
// the instance is unknown locally; acceptSpecOrder re-applies it when the
// proposal arrives (an owner change of the space drops it instead).
// Decisions for instances whose SPECORDER never arrives are re-driven by
// the existing resend and owner-change machinery. A replayed decision from
// the same client replaces its predecessor rather than accumulating, so a
// spammed COMMIT can neither grow memory nor apply twice.
func (r *Replica) deferCommit(inst types.InstanceID, dc deferredCommit) {
	if inst.Slot <= r.log.space(inst.Space).truncated {
		return // below the truncation point: stable-executed long ago
	}
	dcs := r.deferredCommits[inst]
	for i := range dcs {
		if dcs[i].from.Client == dc.from.Client && dcs[i].fast == dc.fast {
			dcs[i] = dc
			return
		}
	}
	if len(dcs) >= maxDeferredPerInstance {
		r.stats.DroppedInvalid++
		return
	}
	r.deferredCommits[inst] = append(dcs, dc)
	r.stats.DeferredCommits++
}

// validateCert checks a commit certificate: enough distinct, correctly
// signed SPECREPLYs for the same instance; if matching is true they must
// all agree on every client-compared field.
func (r *Replica) validateCert(ctx proc.Context, cert []*SpecReply, inst types.InstanceID, quorum int, matching bool) bool {
	// Certificates are MAC-authenticated in the modeled deployment; charge
	// one verification (the cryptographic checks below still run).
	r.cfg.Costs.ChargeVerify(ctx, 1)
	seen := make(map[types.ReplicaID]bool, len(cert))
	for _, sr := range cert {
		if sr.Inst != inst || seen[sr.Replica] {
			return false
		}
		// All elements must vouch for the same command of the same
		// proposal — a certificate mixing replies built from different
		// batches (an equivocating leader's doing) is not a quorum for
		// anything, and mixed layouts would not even survive the wire. The
		// signed SORef keeps this check sound for evidence-slimmed replies
		// that carry no embedded SPECORDER.
		if sr.Batched != cert[0].Batched || sr.BatchIdx != cert[0].BatchIdx ||
			sr.CmdDigest != cert[0].CmdDigest || sr.SORef != cert[0].SORef {
			return false
		}
		// An embedded SPECORDER rides outside the reply's signed body; it
		// must name the proposal the signed SORef vouches for, or the
		// certificate has been tampered with.
		if sr.Batched && sr.SO != nil && sr.SO.CmdDigest != sr.SORef {
			return false
		}
		if !sr.SigVerified() {
			if err := verifyBody(r.cfg.Auth, types.ReplicaNode(sr.Replica), sr, sr.Sig); err != nil {
				return false
			}
		}
		seen[sr.Replica] = true
		if matching && !sr.Matches(cert[0]) {
			return false
		}
	}
	return len(seen) >= quorum
}

// commitEntry installs the final dependencies and sequence number for an
// instance, creating the entry from the certificate if this replica never
// saw the SPECORDER. The whole batch commits as a unit; `from` identifies
// the certificate's command via its batch index. It returns the entry (nil
// if the certificate was unusable or the entry is already executed).
func (r *Replica) commitEntry(ctx proc.Context, inst types.InstanceID, deps types.InstanceSet, seq types.SeqNumber, from *SpecReply, needsReply bool, replyTo types.ClientID) *entry {
	if inst.Slot <= r.log.space(inst.Space).truncated {
		// A late duplicate decision for an instance the stable checkpoint
		// already covers (2f+1 executed it) and truncation freed; nothing
		// left to do — re-installing it would regrow the log.
		return nil
	}
	e := r.log.get(inst)
	if e == nil {
		if from == nil || from.SO == nil {
			r.stats.DroppedInvalid++
			return nil
		}
		so := from.SO
		// The SPECORDER travels outside the reply's signed body, so bind it
		// before trusting it as the instance's content: it must be for this
		// instance, be the proposal the signed replies vouch for (SORef for
		// batched replies, the command digest at the claimed batch position
		// always), carry a digest that binds exactly its embedded requests,
		// and be signed by the owner. Without these checks a Byzantine
		// client could swap an equivocating leader's other proposal into an
		// otherwise-valid certificate and commit different batches on
		// different replicas.
		ds := so.CmdDigests()
		r.cfg.Costs.ChargeVerify(ctx, 1)
		if so.Inst != inst ||
			(from.Batched && so.CmdDigest != from.SORef) ||
			so.CmdDigest != BatchDigest(ds) ||
			int(from.BatchIdx) >= len(ds) || ds[from.BatchIdx] != from.CmdDigest ||
			(!so.SigVerified() &&
				verifyBody(r.cfg.Auth, types.ReplicaNode(so.Owner.OwnerOf(r.n)), so, so.Sig) != nil) {
			r.stats.DroppedInvalid++
			return nil
		}
		e = &entry{
			inst:      inst,
			owner:     from.Owner,
			cmd:       so.Req.Cmd,
			cmdDigest: so.CmdDigest,
			so:        so,
		}
		if len(so.Batch) > 0 {
			e.extra = make([]types.Command, len(so.Batch))
			for i := range so.Batch {
				e.extra[i] = so.Batch[i].Cmd
			}
			e.cmdDigests = so.CmdDigests()
		}
		r.log.put(e)
		for i := 0; i < e.nCmds(); i++ {
			cmd := e.cmdAt(i)
			r.instByCmd[cmdKey{cmd.Client, cmd.Timestamp}] = inst
		}
	}
	idx := int(from.BatchIdx)
	if idx >= e.nCmds() {
		r.stats.DroppedInvalid++
		return nil
	}
	if e.status >= StatusCommitted && e.digestAt(idx) != from.CmdDigest {
		// The instance was already finalized with a different command at
		// that batch position (e.g. a no-op installed by an owner change); a
		// conflicting late commit certificate cannot override it. The client
		// will re-drive its request at a live leader.
		r.stats.DroppedInvalid++
		return nil
	}
	if ref := from.ProposalRef(); ref != (types.Digest{}) && e.status < StatusCommitted && e.cmdDigest != ref {
		// The certificate was built from a different batch than the one
		// this replica spec-ordered at the instance — conflicting evidence
		// from an equivocating leader. Committing either version here could
		// finalize different commands at the same position on different
		// replicas; leave the slot to the owner-change protocol (driven by
		// the clients' POMs and the resend timeouts) to arbitrate.
		r.stats.DroppedInvalid++
		return nil
	}
	if e.status >= StatusExecuted {
		// Already finally executed; a late slow-path commit still needs its
		// reply.
		if needsReply {
			r.sendCommitReply(ctx, e, idx, replyTo)
		}
		return nil
	}
	if e.status == StatusCommitted {
		// A second commit decision for an already-committed instance:
		// several clients of one batch may slow-commit independently (and a
		// retrying client may commit twice), each combining a different
		// 2f+1 quorum's dependency sets. Merge deterministically — union of
		// dependencies, maximum sequence number — so the installed decision
		// is independent of arrival order; a dependency over-approximation
		// only makes execution wait for more commits, never reorders it.
		e.deps.Union(deps)
		if seq > e.seq {
			e.seq = seq
		}
	} else {
		e.deps = deps.Clone()
		e.seq = seq
		e.status = StatusCommitted
	}
	seq = e.seq
	if needsReply {
		e.needCommitReply(idx, replyTo)
	}
	for i := 0; i < e.nCmds(); i++ {
		r.deps.update(inst, e.cmdAt(i), seq)
	}
	// Durability point: the final (possibly merged) decision must survive a
	// crash before execution acts on it.
	r.walHist(walCommitKind, e)
	r.pendingExec[inst] = e
	return e
}

// sendCommitReply answers a slow-path client after final execution of the
// idx'th command of the entry's batch.
func (r *Replica) sendCommitReply(ctx proc.Context, e *entry, idx int, to types.ClientID) {
	reply := &CommitReply{
		Inst:      e.inst,
		CmdDigest: e.digestAt(idx),
		Replica:   r.cfg.Self,
		Result:    e.finalResultAt(idx),
	}
	r.cfg.Costs.ChargeSign(ctx)
	reply.Sig = signBody(r.cfg.Auth, reply)
	r.send(ctx, types.ClientNode(to), reply)
}
