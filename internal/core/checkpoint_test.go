package core

import (
	"testing"
	"time"

	"ezbft/internal/codec"
	"ezbft/internal/sim"
	"ezbft/internal/types"
)

// TestCheckpointTruncationBoundsLog drives sustained load through a
// checkpointing cluster and asserts the per-replica log and dependency
// index stay bounded while the replicas still agree.
func TestCheckpointTruncationBoundsLog(t *testing.T) {
	opts := defaultOpts()
	opts.ckptInterval = 8
	const clients, perClient = 3, 120
	leaders := []types.ReplicaID{0, 1, 2}
	tc := newTestCluster(t, opts, leaders, uniqueKeyScripts(clients, perClient))
	if !tc.run(120 * time.Second) {
		t.Fatal("workload did not complete")
	}
	// Drain in-flight fast-path commits and the checkpoint rounds they
	// trigger.
	tc.rt.Run(tc.rt.Kernel().Now() + 5*time.Second)

	total := clients * perClient
	for i, r := range tc.replicas {
		st := r.Stats()
		if st.Checkpoints == 0 {
			t.Fatalf("replica %d established no stable checkpoints", i)
		}
		if st.TruncatedEntries == 0 {
			t.Fatalf("replica %d truncated nothing", i)
		}
		// Retained entries must be bounded by the checkpoint lag (at most
		// ~2 intervals per active space plus commit stragglers), far below
		// the total instance count.
		bound := int(opts.ckptInterval) * 3 * opts.n
		if got := r.LogEntryCount(); got > bound {
			t.Fatalf("replica %d retains %d log entries (> %d) of %d instances", i, got, bound, total)
		}
		if got := r.DepIndexSize(); got > bound {
			t.Fatalf("replica %d retains %d dep-index refs (> %d)", i, got, bound)
		}
		if st.LowWaterMark == 0 {
			t.Fatalf("replica %d has no low-water mark", i)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestCheckpointDisabledKeepsEverything pins the default: with
// CheckpointInterval 0 no checkpoint traffic flows and no entry is freed.
func TestCheckpointDisabledKeepsEverything(t *testing.T) {
	opts := defaultOpts()
	const clients, perClient = 2, 40
	tc := newTestCluster(t, opts, []types.ReplicaID{0, 1}, uniqueKeyScripts(clients, perClient))
	if !tc.run(60 * time.Second) {
		t.Fatal("workload did not complete")
	}
	tc.rt.Run(tc.rt.Kernel().Now() + 2*time.Second)
	for i, r := range tc.replicas {
		st := r.Stats()
		if st.Checkpoints != 0 || st.TruncatedEntries != 0 {
			t.Fatalf("replica %d checkpointed with the subsystem disabled: %+v", i, st)
		}
		if got := r.LogEntryCount(); got < clients*perClient {
			t.Fatalf("replica %d retains %d entries, want >= %d", i, got, clients*perClient)
		}
	}
}

// TestCatchupRejoin partitions one replica away, advances the cluster far
// past the retention window (the others truncate), lifts the partition,
// and verifies the laggard rejoins via state transfer and converges.
func TestCatchupRejoin(t *testing.T) {
	opts := defaultOpts()
	opts.ckptInterval = 4
	const clients, perClient = 3, 60
	leaders := []types.ReplicaID{0, 1, 2}
	tc := newTestCluster(t, opts, leaders, uniqueKeyScripts(clients, perClient))

	// Drop everything inbound at replica 3 for the first half of the
	// workload.
	lagging := types.ReplicaNode(3)
	partitioned := true
	tc.rt.SetFilter(func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if partitioned && to == lagging {
			return sim.Drop, 0
		}
		return sim.Deliver, 0
	})

	tc.rt.Start()
	half := tc.rt.RunUntil(func() bool {
		for _, d := range tc.drivers {
			if len(d.Results) < perClient/2 {
				return false
			}
		}
		return true
	}, 120*time.Second)
	if !half {
		t.Fatal("first phase did not complete")
	}
	// The connected replicas must have truncated below their stable marks
	// while the laggard saw nothing.
	if got := tc.replicas[0].Stats().TruncatedEntries; got == 0 {
		t.Fatal("connected replicas truncated nothing during the partition")
	}
	if got := tc.replicas[3].LogEntryCount(); got != 0 {
		t.Fatalf("partitioned replica has %d entries, want 0", got)
	}

	partitioned = false
	done := tc.rt.RunUntil(func() bool {
		for _, d := range tc.drivers {
			if len(d.Results) < perClient {
				return false
			}
		}
		return true
	}, 240*time.Second)
	if !done {
		t.Fatal("second phase did not complete")
	}
	tc.rt.Run(tc.rt.Kernel().Now() + 10*time.Second)

	st := tc.replicas[3].Stats()
	if st.CatchupsInstalled == 0 {
		t.Fatalf("lagging replica installed no state transfer: %+v", st)
	}
	served := uint64(0)
	for _, r := range tc.replicas[:3] {
		served += r.Stats().CatchupsServed
	}
	if served == 0 {
		t.Fatal("no replica served a state transfer")
	}
	// The rejoined replica must converge on the application state.
	ref := tc.apps[0].Digest()
	if got := tc.apps[3].Digest(); got != ref {
		t.Fatalf("rejoined replica diverged: %v != %v", got, ref)
	}
	tc.checkConsistency()
}

// TestSOFetchRestoresPOM verifies fetch-on-conflict: a client holding two
// evidence-slimmed replies (signed SORef only) for conflicting proposals
// fetches the full SPECORDERs and broadcasts a POM a replica accepts.
func TestSOFetchRestoresPOM(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0}, [][]types.Command{{}})
	cl := tc.clients[0]
	leaderAuth := tc.replicas[0].cfg.Auth

	cctx := &captureCtx{}
	ts := cl.Submit(cctx, putCmd("k", "v"))
	cmd := types.Command{Client: cl.cfg.ID, Timestamp: ts, Op: types.OpPut, Key: "k", Value: []byte("v")}
	other := types.Command{Client: 99, Timestamp: 1, Op: types.OpPut, Key: "x", Value: []byte("y")}

	// An equivocating leader (R0) signs two different batches ordering the
	// command at two instances.
	mkSO := func(slot uint64) *SpecOrder {
		digests := []types.Digest{cmd.Digest(), other.Digest()}
		so := &SpecOrder{
			Owner:     0,
			Inst:      types.InstanceID{Space: 0, Slot: slot},
			Deps:      types.NewInstanceSet(),
			Seq:       1,
			CmdDigest: BatchDigest(digests),
			Req:       Request{Cmd: cmd, Orig: noOrig},
			Batch:     []Request{{Cmd: other, Orig: noOrig}},
		}
		so.Sig = signBody(leaderAuth, so)
		return so
	}
	soA := mkSO(1)
	soB := mkSO(2)

	// Evidence-slimmed replies (signed SORef, no embedded SPECORDER) from
	// two replicas, one per conflicting proposal.
	mkReply := func(rid types.ReplicaID, so *SpecOrder) *SpecReply {
		sr := &SpecReply{
			Owner: 0, Inst: so.Inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: cmd.Digest(), Client: cl.cfg.ID, Timestamp: ts, Replica: rid,
			Result: types.Result{OK: true}, Batched: true, BatchIdx: 0, SORef: so.CmdDigest,
		}
		sr.Sig = signBody(tc.replicas[rid].cfg.Auth, sr)
		return sr
	}
	cl.Receive(cctx, types.ReplicaNode(1), mkReply(1, soA))
	cl.Receive(cctx, types.ReplicaNode(2), mkReply(2, soB))

	// The client must have asked for the full proposals behind both SORefs.
	fetches := 0
	for _, msg := range cctx.sends {
		if _, ok := msg.(*SOFetch); ok {
			fetches++
		}
	}
	if fetches != 2 {
		t.Fatalf("client sent %d SOFETCHs, want 2", fetches)
	}

	// Replicas answer with the full SPECORDERs; the POM must follow.
	cl.Receive(cctx, types.ReplicaNode(1), soA)
	cl.Receive(cctx, types.ReplicaNode(2), soB)
	var pom *POM
	for _, msg := range cctx.sends {
		if m, ok := msg.(*POM); ok {
			pom = m
		}
	}
	if pom == nil {
		t.Fatal("client built no POM from fetched evidence")
	}
	if pom.Suspect != 0 {
		t.Fatalf("POM accuses %v, want R0", pom.Suspect)
	}
	if cl.Stats().POMsSent != 1 {
		t.Fatalf("POMsSent = %d, want 1", cl.Stats().POMsSent)
	}

	// A replica receiving the POM must accept it and vote an owner change.
	repCtx := &captureCtx{}
	tc.replicas[1].Receive(repCtx, types.ClientNode(cl.cfg.ID), pom)
	voted := false
	for _, msg := range repCtx.sends {
		if _, ok := msg.(*StartOwnerChange); ok {
			voted = true
		}
	}
	if !voted {
		t.Fatal("replica did not vote an owner change on the fetched-evidence POM")
	}

	// And a replica holding the entry must serve SOFETCH with the full
	// SPECORDER.
	r2 := tc.replicas[2]
	r2.handleSpecOrder(&captureCtx{}, types.ReplicaNode(0), soA)
	fetch := &SOFetch{Client: cl.cfg.ID, Inst: soA.Inst, Ref: soA.CmdDigest}
	fetch.Sig = signBody(cl.cfg.Auth, fetch)
	serveCtx := &captureCtx{}
	r2.Receive(serveCtx, types.ClientNode(cl.cfg.ID), fetch)
	servedSO := false
	for _, msg := range serveCtx.sends {
		if so, ok := msg.(*SpecOrder); ok && so.CmdDigest == soA.CmdDigest {
			servedSO = true
		}
	}
	if !servedSO {
		t.Fatal("replica did not serve the fetched SPECORDER")
	}
}

// TestCheckpointWireRoundTrip pins the new lifecycle messages' encodings.
func TestCheckpointWireRoundTrip(t *testing.T) {
	msgs := []codec.Message{
		&CheckpointMsg{Space: 2, Slot: 16, Digest: types.DigestBytes([]byte("d")), Replica: 1, Sig: []byte("s")},
		&CatchupReq{Replica: 3, Sig: []byte("sig")},
		&SOFetch{Client: 9, Inst: types.InstanceID{Space: 1, Slot: 4}, Ref: types.DigestBytes([]byte("r")), Sig: []byte("q")},
		&CatchupResp{
			Replica: 1,
			Spaces: []SpaceCkpt{{
				Space: 0, Owner: 4, Frozen: true, LowWater: 8,
				StableDigest: types.DigestBytes([]byte("sd")), Truncated: 8, MaxSlot: 11,
				ExecMark: 10, ExecDigest: types.DigestBytes([]byte("ed")), LogHash: types.DigestBytes([]byte("lh")),
			}},
			Clients:  []ClientMark{{Client: 2, Ts: 17}},
			Snapshot: []byte("snapshot-bytes"),
			Suffix: []HistEntry{{
				Inst: types.InstanceID{Space: 0, Slot: 9}, Status: HistExecuted,
				Cmd:  types.Command{Client: 2, Timestamp: 17, Op: types.OpPut, Key: "k", Value: []byte("v")},
				Deps: types.NewInstanceSet(), Seq: 3, Owner: 4,
			}},
			Proof: []*CheckpointMsg{{Space: 0, Slot: 8, Digest: types.DigestBytes([]byte("sd")), Replica: 0, Sig: []byte("p")}},
			Sig:   []byte("rs"),
		},
	}
	for _, m := range msgs {
		b := codec.Marshal(m)
		back, err := codec.Unmarshal(b)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if b2 := codec.Marshal(back); string(b) != string(b2) {
			t.Fatalf("%T: round trip not stable", m)
		}
	}
}

// TestDuplicateRequestAfterCatchup: a rejoining replica installs, with the
// state-transfer snapshot, the per-client executed-timestamp table. A
// byte-identical duplicate REQUEST for a command the snapshot already
// reflects must then never be re-applied — even when the caught-up replica
// (which no longer holds the original instance or cached reply) re-orders
// the duplicate at a fresh instance and that instance commits.
func TestDuplicateRequestAfterCatchup(t *testing.T) {
	opts := defaultOpts()
	opts.ckptInterval = 4
	const clients, perClient = 3, 24
	scripts := make([][]types.Command, clients)
	for i := range scripts {
		for j := 0; j < perClient; j++ {
			scripts[i] = append(scripts[i], incrCmd("ctr"))
		}
	}
	leaders := []types.ReplicaID{0, 1, 2}
	tc := newTestCluster(t, opts, leaders, scripts)

	lagging := types.ReplicaNode(3)
	partitioned := true
	tc.rt.SetFilter(func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if partitioned && to == lagging {
			return sim.Drop, 0
		}
		return sim.Deliver, 0
	})
	tc.rt.Start()
	half := tc.rt.RunUntil(func() bool {
		for _, d := range tc.drivers {
			if len(d.Results) < perClient/2 {
				return false
			}
		}
		return true
	}, 120*time.Second)
	if !half {
		t.Fatal("first phase did not complete")
	}
	partitioned = false
	done := tc.rt.RunUntil(func() bool {
		for _, d := range tc.drivers {
			if len(d.Results) < perClient {
				return false
			}
		}
		return true
	}, 240*time.Second)
	if !done {
		t.Fatal("second phase did not complete")
	}
	tc.rt.Run(tc.rt.Kernel().Now() + 10*time.Second)
	r3 := tc.replicas[3]
	if r3.Stats().CatchupsInstalled == 0 {
		t.Fatal("lagging replica installed no state transfer")
	}

	// Replay client 0's first command, byte-identical to the original.
	cl := tc.clients[0]
	cmd := types.Command{Client: cl.cfg.ID, Timestamp: 1, Op: types.OpIncr, Key: "ctr"}
	dup := &Request{Cmd: cmd, Orig: noOrig}
	dup.Sig = signBody(cl.cfg.Auth, dup)

	before := tc.apps[3].Digest()
	cctx := &captureCtx{}
	r3.Receive(cctx, types.ClientNode(cl.cfg.ID), dup)

	var so *SpecOrder
	var served *SpecReply
	for _, m := range cctx.sends {
		switch v := m.(type) {
		case *SpecOrder:
			so = v
		case *SpecReply:
			if v.Client == cl.cfg.ID && v.Timestamp == 1 {
				served = v
			}
		}
	}
	if so == nil && served == nil {
		t.Fatal("duplicate request was silently dropped (no cached reply, no proposal)")
	}
	t.Logf("duplicate handled via re-order=%v cached-reply=%v", so != nil, served != nil)
	if so != nil {
		// The caught-up replica re-ordered the duplicate at a fresh
		// instance. Drive that instance to commit and final execution by
		// hand: the installed executed-timestamp table must make the
		// duplicate a no-op.
		var cert []*SpecReply
		for _, rid := range []types.ReplicaID{0, 1, 2} {
			pctx := &captureCtx{}
			tc.replicas[rid].Receive(pctx, types.ReplicaNode(3), so)
			for _, m := range pctx.sends {
				if sr, ok := m.(*SpecReply); ok && sr.Client == cl.cfg.ID && sr.Timestamp == 1 {
					cert = append(cert, sr)
				}
			}
		}
		if len(cert) < SlowQuorum(tc.n) {
			t.Fatalf("collected %d replies for the duplicate instance, want %d", len(cert), SlowQuorum(tc.n))
		}
		commit := &Commit{
			Client: cl.cfg.ID, Timestamp: 1,
			Inst: so.Inst, Deps: cert[0].Deps.Clone(), Seq: cert[0].Seq,
			Cert: cert[:SlowQuorum(tc.n)],
		}
		commit.Sig = signBody(cl.cfg.Auth, commit)
		r3.Receive(&captureCtx{}, types.ClientNode(cl.cfg.ID), commit)
	}

	if got := tc.apps[3].Digest(); got != before {
		t.Fatal("duplicate request was re-applied after catch-up")
	}
	if ref := tc.apps[0].Digest(); tc.apps[3].Digest() != ref {
		t.Fatal("caught-up replica diverged from the cluster")
	}
}
