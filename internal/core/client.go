package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/proc"
	"ezbft/internal/types"
	"ezbft/internal/workload"
)

// Client-side defaults; experiments tune these to their topology.
const (
	DefaultSlowPathTimeout = 400 * time.Millisecond
	DefaultRetryTimeout    = 4 * time.Second
)

// ErrNilDriver reports a client configured without a workload driver.
var ErrNilDriver = errors.New("core: client driver must not be nil")

// ClientConfig configures one ezBFT client.
type ClientConfig struct {
	// ID is this client's identifier.
	ID types.ClientID
	// N is the cluster size (3f+1).
	N int
	// Leader is the replica this client sends requests to (its closest).
	Leader types.ReplicaID
	// Auth signs requests and verifies replica replies.
	Auth auth.Authenticator
	// Costs holds virtual processing costs for simulation.
	Costs proc.Costs
	// Driver decides what to submit and receives completions.
	Driver workload.Driver
	// SlowPathTimeout is the paper's step-4.2 timer: how long to wait for
	// matching replies before combining a 2f+1 quorum's dependencies.
	SlowPathTimeout time.Duration
	// RetryTimeout is the paper's step-4.3 timer: how long to wait for
	// 2f+1 replies before re-broadcasting the request to all replicas.
	RetryTimeout time.Duration
	// DisableFastPath makes the client ignore fast-path opportunities and
	// always commit through the slow path. Ablation only: it quantifies
	// what speculative execution plus the 3f+1 fast quorum buy (DESIGN.md
	// §5); never enable it in production use.
	DisableFastPath bool
}

func (c *ClientConfig) validate() error {
	if c.N < 4 || (c.N-1)%3 != 0 {
		return fmt.Errorf("%w: N=%d", ErrBadClusterSize, c.N)
	}
	if c.Leader < 0 || int(c.Leader) >= c.N {
		return fmt.Errorf("%w: leader %d", ErrBadReplicaID, c.Leader)
	}
	if c.Auth == nil {
		return ErrNilAuth
	}
	if c.Driver == nil {
		return ErrNilDriver
	}
	if c.SlowPathTimeout <= 0 {
		c.SlowPathTimeout = DefaultSlowPathTimeout
	}
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = DefaultRetryTimeout
	}
	return nil
}

// ClientStats exposes client-side protocol counters.
type ClientStats struct {
	Submitted     uint64
	Completed     uint64
	FastDecisions uint64
	SlowDecisions uint64
	Retries       uint64
	POMsSent      uint64
}

// replyKey identifies one proposal a SPECREPLY vouches for: the instance
// plus the batch digest of the proposal. Grouping by both keeps replies
// built from different batches apart — an equivocating leader may sign
// different batches for the same instance, and combining their replies
// (fast-path matching or slow-path dependency union) must never mix
// proposals. Unbatched SPECORDERs carry the command digest there, so for
// them this is exactly the pre-batching per-instance grouping.
type replyKey struct {
	inst  types.InstanceID
	batch types.Digest
}

// keyOf returns the grouping key for a validated reply: the embedded
// SPECORDER's batch digest when present, the reply's signed SORef for
// evidence-slimmed batched replies.
func keyOf(m *SpecReply) replyKey {
	return replyKey{inst: m.Inst, batch: m.ProposalRef()}
}

// Less orders reply keys deterministically.
func (k replyKey) Less(o replyKey) bool {
	if k.inst != o.inst {
		return k.inst.Less(o.inst)
	}
	for i := range k.batch {
		if k.batch[i] != o.batch[i] {
			return k.batch[i] < o.batch[i]
		}
	}
	return false
}

// pendingReq tracks one outstanding request.
type pendingReq struct {
	cmd    types.Command
	digest types.Digest // cmd.Digest(), computed once per request
	req    *Request
	issued time.Duration
	// replies groups SPECREPLYs by the proposal they vouch for, then by
	// sender (a faulty leader may cause several proposals per request).
	replies  map[replyKey]map[types.ReplicaID]*SpecReply
	replied  map[types.ReplicaID]bool
	pomSent  bool
	retries  int
	timedOut bool

	// Fetch-on-conflict (evidence slimming): fetched holds full SPECORDERs
	// retrieved via SOFETCH for proposals whose replies carried only the
	// signed SORef digest; fetchReqs marks proposals already asked about.
	fetched   map[replyKey]*SpecOrder
	fetchReqs map[replyKey]bool

	commitSent    bool
	commitInst    types.InstanceID
	commitReplies map[types.ReplicaID]*CommitReply
}

// Client is an ezBFT client: it actively participates in consensus by
// collecting speculative replies, deciding fast versus slow path, combining
// dependency sets, detecting command-leader equivocation, and enforcing the
// final order (paper §III: "the client is actively involved in the
// consensus process"). It implements proc.Process.
type Client struct {
	cfg ClientConfig
	n   int
	f   int

	nextTS  uint64
	pending map[uint64]*pendingReq
	stats   ClientStats

	// replicas lists every replica's address, precomputed for broadcasts.
	replicas []types.NodeID
}

var (
	_ proc.Process       = (*Client)(nil)
	_ workload.Submitter = (*Client)(nil)
)

// timer id layout: ts*4 + kind (kinds below); driver timers pass through.
const (
	timerKindSlow  = 1
	timerKindRetry = 2
)

// NewClient constructs a client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Client{
		cfg:     cfg,
		n:       cfg.N,
		f:       F(cfg.N),
		pending: make(map[uint64]*pendingReq),
	}
	for i := 0; i < cfg.N; i++ {
		c.replicas = append(c.replicas, types.ReplicaNode(types.ReplicaID(i)))
	}
	return c, nil
}

// ID implements proc.Process.
func (c *Client) ID() types.NodeID { return types.ClientNode(c.cfg.ID) }

// ClientID implements workload.Submitter.
func (c *Client) ClientID() types.ClientID { return c.cfg.ID }

// InFlight implements workload.Submitter.
func (c *Client) InFlight() int { return len(c.pending) }

// Stats returns a snapshot of client counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Init implements proc.Process.
func (c *Client) Init(ctx proc.Context) {
	c.cfg.Driver.Start(ctx, c)
}

// Submit implements workload.Submitter: stamp the command, sign the
// REQUEST, send it to the nearest replica, and arm the slow-path and retry
// timers. It returns the timestamp assigned to the command.
func (c *Client) Submit(ctx proc.Context, cmd types.Command) uint64 {
	c.nextTS++
	ts := c.nextTS
	cmd.Client = c.cfg.ID
	cmd.Timestamp = ts

	req := &Request{Cmd: cmd, Orig: noOrig}
	c.cfg.Costs.ChargeSign(ctx)
	req.Sig = signBody(c.cfg.Auth, req)

	c.pending[ts] = &pendingReq{
		cmd:           cmd,
		digest:        cmd.Digest(),
		req:           req,
		issued:        ctx.Now(),
		replies:       make(map[replyKey]map[types.ReplicaID]*SpecReply),
		replied:       make(map[types.ReplicaID]bool),
		commitReplies: make(map[types.ReplicaID]*CommitReply),
	}
	c.stats.Submitted++
	ctx.Send(types.ReplicaNode(c.cfg.Leader), req)
	ctx.SetTimer(proc.TimerID(ts*4+timerKindSlow), c.cfg.SlowPathTimeout)
	ctx.SetTimer(proc.TimerID(ts*4+timerKindRetry), c.cfg.RetryTimeout)
	return ts
}

// Receive implements proc.Process.
func (c *Client) Receive(ctx proc.Context, from types.NodeID, msg codec.Message) {
	switch m := msg.(type) {
	case *SpecReply:
		c.handleSpecReply(ctx, m)
	case *CommitReply:
		c.handleCommitReply(ctx, m)
	case *SpecOrder:
		c.handleFetchedSO(ctx, m)
	}
}

// OnTimer implements proc.Process.
func (c *Client) OnTimer(ctx proc.Context, id proc.TimerID) {
	if id >= workload.DriverTimerBase {
		c.cfg.Driver.OnTimer(ctx, c, id)
		return
	}
	ts := uint64(id) / 4
	p, ok := c.pending[ts]
	if !ok {
		return
	}
	switch uint64(id) % 4 {
	case timerKindSlow:
		if !c.trySlowPath(ctx, ts, p) {
			// Not enough replies yet; check again after another period.
			ctx.SetTimer(id, c.cfg.SlowPathTimeout)
		}
	case timerKindRetry:
		c.retry(ctx, ts, p)
	}
}

// handleSpecReply processes step 4: collect replies, check for proofs of
// misbehaviour, and decide fast path on 3f+1 matching replies.
func (c *Client) handleSpecReply(ctx proc.Context, m *SpecReply) {
	p, ok := c.pending[m.Timestamp]
	if !ok || m.Client != c.cfg.ID {
		return
	}
	if !m.SigVerified() {
		c.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(c.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			return
		}
	}
	if m.CmdDigest != p.digest {
		return
	}
	if m.SO != nil && m.Batched && m.SO.CmdDigest != m.SORef {
		// The signed proposal reference must name the embedded proposal;
		// a mismatch is a forgery, not evidence of anything.
		return
	}

	// Step 4.4: an embedded SPECORDER that disagrees with a previously seen
	// one on the instance number proves command-leader equivocation. Only
	// SPECORDERs that actually order this request are compared — a batched
	// SPECORDER proves equivocation only if our command is in the batch.
	if !p.pomSent && m.SO != nil && m.SO.OrdersCommand(p.cmd) {
		c.checkPOM(ctx, p, m)
	}

	key := keyOf(m)
	group, ok := p.replies[key]
	if !ok {
		group = make(map[types.ReplicaID]*SpecReply, c.n)
		p.replies[key] = group
	}
	group[m.Replica] = m
	p.replied[m.Replica] = true

	// Conflicting proposals for one request are equivocation evidence, but
	// a POM needs the full SPECORDERs; fetch the ones evidence slimming
	// withheld (step 4.4 restored for BatchIdx > 0 clients).
	if !p.pomSent && len(p.replies) > 1 {
		c.fetchConflictEvidence(ctx, p)
	}

	// Step 4.1: 3f+1 matching responses constitute a fast decision.
	if !c.cfg.DisableFastPath && len(group) == FastQuorum(c.n) && c.allMatch(group) {
		c.finishFast(ctx, m.Timestamp, p, m.Inst, group)
		return
	}
	// If every replica has answered and no fast decision is possible, take
	// the slow path immediately rather than waiting for the timer.
	if !p.commitSent && len(p.replied) == c.n {
		c.trySlowPath(ctx, m.Timestamp, p)
	}
}

// checkPOM compares the new reply's embedded SPECORDER against previously
// collected ones; on a conflict it broadcasts the proof of misbehaviour.
func (c *Client) checkPOM(ctx proc.Context, p *pendingReq, m *SpecReply) {
	for _, group := range p.replies {
		for _, prev := range group {
			if prev.SO == nil || prev.SO.Owner != m.SO.Owner {
				continue
			}
			if prev.SO.Inst == m.SO.Inst && prev.SO.CmdDigest == m.SO.CmdDigest {
				continue // the same proposal, no conflict
			}
			// Remaining cases are equivocation evidence: the same request
			// ordered at two instances, or — with batching — two different
			// batches signed for the same instance.
			if !prev.SO.OrdersCommand(p.cmd) {
				continue // the earlier SPECORDER does not order this request
			}
			// Same owner ordered the same request at two instances; verify
			// both signatures before accusing (pre-marked ones are already
			// proven).
			owner := m.SO.Owner.OwnerOf(c.n)
			c.cfg.Costs.ChargeVerify(ctx, 2)
			if !m.SO.SigVerified() && verifyBody(c.cfg.Auth, types.ReplicaNode(owner), m.SO, m.SO.Sig) != nil {
				return
			}
			if !prev.SO.SigVerified() && verifyBody(c.cfg.Auth, types.ReplicaNode(owner), prev.SO, prev.SO.Sig) != nil {
				return
			}
			pom := &POM{Suspect: owner, Owner: m.SO.Owner, Client: c.cfg.ID, A: prev.SO, B: m.SO}
			proc.Broadcast(ctx, c.replicas, pom)
			p.pomSent = true
			c.stats.POMsSent++
			return
		}
	}
}

// fetchConflictEvidence runs when replies for one request reference more
// than one proposal. Every group's proposal provably orders this request
// (the reply's signed body binds the command digest, batch position, and
// SORef), so two groups are equivocation by the same owner — but only full
// SPECORDERs constitute a POM. Groups whose replies embedded the SPECORDER
// already have one; for evidence-slimmed groups the client asks a vouching
// replica for the full proposal behind the signed SORef (SOFETCH), then
// assembles the POM when both sides are in hand.
func (c *Client) fetchConflictEvidence(ctx proc.Context, p *pendingReq) {
	for key, group := range p.replies {
		if c.soForGroup(p, key) != nil || p.fetchReqs[key] {
			continue
		}
		if p.fetchReqs == nil {
			p.fetchReqs = make(map[replyKey]bool, 2)
		}
		p.fetchReqs[key] = true
		req := &SOFetch{Client: c.cfg.ID, Inst: key.inst, Ref: key.batch}
		c.cfg.Costs.ChargeSign(ctx)
		req.Sig = signBody(c.cfg.Auth, req)
		// Ask the lowest-id replica that vouched for the proposal; it holds
		// the SPECORDER (it signed a reply derived from it).
		ctx.Send(types.ReplicaNode(c.lowestReplica(group)), req)
	}
	c.tryPOMFromEvidence(ctx, p)
}

// soForGroup returns the full SPECORDER known for a proposal group: an
// embedded one from any reply, or a fetched one.
func (c *Client) soForGroup(p *pendingReq, key replyKey) *SpecOrder {
	for _, sr := range p.replies[key] {
		if sr.SO != nil {
			return sr.SO
		}
	}
	return p.fetched[key]
}

// handleFetchedSO processes a replica's answer to an SOFETCH: validate the
// proposal against the signed SORef it was fetched for, then try to build
// the proof of misbehaviour.
func (c *Client) handleFetchedSO(ctx proc.Context, so *SpecOrder) {
	key := replyKey{inst: so.Inst, batch: so.CmdDigest}
	var p *pendingReq
	for _, cand := range c.pending {
		if cand.fetchReqs[key] {
			p = cand
			break
		}
	}
	if p == nil || p.pomSent || p.fetched[key] != nil {
		return
	}
	// The proposal must bind its signed digest to its embedded requests and
	// actually order this client's command, and the owner signature must
	// verify — the same checks a replica applies before trusting a
	// SPECORDER that arrived outside its own frame.
	if so.CmdDigest != BatchDigest(so.CmdDigests()) || !so.OrdersCommand(p.cmd) {
		return
	}
	if !so.SigVerified() {
		c.cfg.Costs.ChargeVerify(ctx, 1)
		if verifyBody(c.cfg.Auth, types.ReplicaNode(so.Owner.OwnerOf(c.n)), so, so.Sig) != nil {
			return
		}
		so.MarkSigVerified()
	}
	if p.fetched == nil {
		p.fetched = make(map[replyKey]*SpecOrder, 2)
	}
	p.fetched[key] = so
	c.tryPOMFromEvidence(ctx, p)
}

// tryPOMFromEvidence broadcasts a POM once full SPECORDERs are known for
// two conflicting proposals signed by the same owner.
func (c *Client) tryPOMFromEvidence(ctx proc.Context, p *pendingReq) {
	if p.pomSent {
		return
	}
	keys := make([]replyKey, 0, len(p.replies))
	for key := range p.replies {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for i := 0; i < len(keys); i++ {
		a := c.soForGroup(p, keys[i])
		if a == nil || !a.OrdersCommand(p.cmd) {
			continue
		}
		for j := i + 1; j < len(keys); j++ {
			b := c.soForGroup(p, keys[j])
			if b == nil || a.Owner != b.Owner || !b.OrdersCommand(p.cmd) {
				continue
			}
			if a.Inst == b.Inst && a.CmdDigest == b.CmdDigest {
				continue // the same proposal
			}
			owner := a.Owner.OwnerOf(c.n)
			c.cfg.Costs.ChargeVerify(ctx, 2)
			if !a.SigVerified() && verifyBody(c.cfg.Auth, types.ReplicaNode(owner), a, a.Sig) != nil {
				continue
			}
			if !b.SigVerified() && verifyBody(c.cfg.Auth, types.ReplicaNode(owner), b, b.Sig) != nil {
				continue
			}
			pom := &POM{Suspect: owner, Owner: a.Owner, Client: c.cfg.ID, A: a, B: b}
			proc.Broadcast(ctx, c.replicas, pom)
			p.pomSent = true
			c.stats.POMsSent++
			return
		}
	}
}

// allMatch reports whether every reply in the group matches (deterministic
// reference: the lowest replica ID).
func (c *Client) allMatch(group map[types.ReplicaID]*SpecReply) bool {
	ref := group[c.lowestReplica(group)]
	for _, sr := range group {
		if !sr.Matches(ref) {
			return false
		}
	}
	return true
}

func (c *Client) lowestReplica(group map[types.ReplicaID]*SpecReply) types.ReplicaID {
	low := types.ReplicaID(-1)
	for rid := range group {
		if low < 0 || rid < low {
			low = rid
		}
	}
	return low
}

// slimCert drops the embedded SPECORDER from every batched certificate
// element but the first (copies, never mutating the collected replies):
// replicas use only the first element's embedded proposal — bound to the
// signed SORef every element carries — so the extra copies are pure wire
// weight. Unbatched replies keep their SPECORDERs; their layout predates
// slimming and stays byte-identical. Copies go through cloneSlim, not a
// plain struct copy: after a retried commit the same reply values are
// already shared with every replica's verifier pool, whose atomic marks a
// plain copy would race with.
func slimCert(cert []*SpecReply) []*SpecReply {
	for i, sr := range cert {
		if i == 0 || !sr.Batched || sr.SO == nil {
			continue
		}
		cert[i] = sr.cloneSlim()
	}
	return cert
}

// cloneSlim copies a reply without its embedded SPECORDER, re-reading the
// Verified flag atomically instead of plain-copying it.
func (m *SpecReply) cloneSlim() *SpecReply {
	cp := &SpecReply{
		Owner:     m.Owner,
		Inst:      m.Inst,
		Deps:      m.Deps,
		Seq:       m.Seq,
		CmdDigest: m.CmdDigest,
		Client:    m.Client,
		Timestamp: m.Timestamp,
		Replica:   m.Replica,
		Result:    m.Result,
		Batched:   m.Batched,
		BatchIdx:  m.BatchIdx,
		SORef:     m.SORef,
		Sig:       m.Sig,
	}
	if m.SigVerified() {
		cp.MarkSigVerified()
	}
	return cp
}

// finishFast completes a request on the fast path: return to the
// application, then asynchronously send COMMITFAST with the certificate.
func (c *Client) finishFast(ctx proc.Context, ts uint64, p *pendingReq, inst types.InstanceID, group map[types.ReplicaID]*SpecReply) {
	cert := make([]*SpecReply, 0, len(group))
	for _, rid := range sortedGroupKeys(group) {
		cert = append(cert, group[rid])
	}
	cf := &CommitFast{Client: c.cfg.ID, Inst: inst, Cert: slimCert(cert)}
	proc.Broadcast(ctx, c.replicas, cf)
	c.stats.FastDecisions++
	c.finish(ctx, ts, p, group[c.lowestReplica(group)].Result, true)
}

// trySlowPath implements step 4.2: with at least 2f+1 replies for one
// instance, combine their dependency sets, take the maximum sequence
// number, and broadcast the signed COMMIT. Reports whether the commit was
// sent (or the request is already done).
func (c *Client) trySlowPath(ctx proc.Context, ts uint64, p *pendingReq) bool {
	if p.commitSent {
		return true
	}
	inst, group := c.bestGroup(p)
	if group == nil || len(group) < SlowQuorum(c.n) {
		return false
	}
	// Prefer the command-leader's known slow quorum (the paper's
	// "Nitpick"); fall back to the lowest 2f+1 replica IDs that answered.
	leader := types.ReplicaID(-1)
	if len(group) > 0 {
		leader = group[c.lowestReplica(group)].Owner.OwnerOf(c.n)
	}
	chosen := make([]*SpecReply, 0, SlowQuorum(c.n))
	known := SlowQuorumMembers(leader, c.n)
	complete := true
	for _, rid := range known {
		sr, ok := group[rid]
		if !ok {
			complete = false
			break
		}
		chosen = append(chosen, sr)
	}
	if !complete {
		chosen = chosen[:0]
		for _, rid := range sortedGroupKeys(group) {
			chosen = append(chosen, group[rid])
			if len(chosen) == SlowQuorum(c.n) {
				break
			}
		}
	}

	deps := types.NewInstanceSet()
	var seq types.SeqNumber
	for _, sr := range chosen {
		deps.Union(sr.Deps)
		if sr.Seq > seq {
			seq = sr.Seq
		}
	}

	commit := &Commit{
		Client:    c.cfg.ID,
		Timestamp: ts,
		Inst:      inst,
		Deps:      deps,
		Seq:       seq,
		Cert:      slimCert(chosen),
	}
	c.cfg.Costs.ChargeSign(ctx)
	commit.Sig = signBody(c.cfg.Auth, commit)
	proc.Broadcast(ctx, c.replicas, commit)
	p.commitSent = true
	p.commitInst = inst
	c.stats.SlowDecisions++
	return true
}

// bestGroup returns the proposal with the most replies (ties broken by
// key order, for determinism). Replies for the same instance built from
// different batches live in different groups, so the combined quorum is
// always over one proposal.
func (c *Client) bestGroup(p *pendingReq) (types.InstanceID, map[types.ReplicaID]*SpecReply) {
	var (
		bestKey   replyKey
		bestGroup map[types.ReplicaID]*SpecReply
	)
	keys := make([]replyKey, 0, len(p.replies))
	for key := range p.replies {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	for _, key := range keys {
		g := p.replies[key]
		if bestGroup == nil || len(g) > len(bestGroup) {
			bestKey, bestGroup = key, g
		}
	}
	return bestKey.inst, bestGroup
}

// handleCommitReply processes step 6.2: the request completes when 2f+1
// replicas report the same final-execution result.
func (c *Client) handleCommitReply(ctx proc.Context, m *CommitReply) {
	var (
		ts uint64
		p  *pendingReq
	)
	for candTS, cand := range c.pending {
		if cand.commitSent && cand.commitInst == m.Inst {
			ts, p = candTS, cand
			break
		}
	}
	if p == nil {
		return
	}
	if !m.SigVerified() {
		c.cfg.Costs.ChargeVerify(ctx, 1)
		if err := verifyBody(c.cfg.Auth, types.ReplicaNode(m.Replica), m, m.Sig); err != nil {
			return
		}
	}
	if m.CmdDigest != p.digest {
		return
	}
	p.commitReplies[m.Replica] = m

	// Count matching results.
	counts := make(map[string]int, 2)
	for _, cr := range p.commitReplies {
		key := fmt.Sprintf("%t|%x", cr.Result.OK, cr.Result.Value)
		counts[key]++
		if counts[key] >= SlowQuorum(c.n) {
			c.finish(ctx, ts, p, cr.Result, false)
			return
		}
	}
}

// retry implements step 4.3: too few replies within the timeout, so the
// client re-broadcasts the request to all replicas, naming the original
// recipient.
func (c *Client) retry(ctx proc.Context, ts uint64, p *pendingReq) {
	p.retries++
	p.timedOut = true
	c.stats.Retries++
	// A COMMIT sent just before an owner change may have been dropped by
	// suspended replicas; allow a fresh slow-path decision on whatever
	// groups form after the retry.
	p.commitSent = false
	p.commitReplies = make(map[types.ReplicaID]*CommitReply)

	// Broadcast the request naming the original leader: replicas that
	// already spec-ordered it resend their cached replies, and the rest
	// forward RESENDREQs that (on timeout) trigger an owner change.
	retryReq := &Request{Cmd: p.cmd, Orig: c.cfg.Leader}
	c.cfg.Costs.ChargeSign(ctx)
	retryReq.Sig = signBody(c.cfg.Auth, retryReq)
	proc.Broadcast(ctx, c.replicas, retryReq)
	// Additionally rotate to the next replica as a fresh command-leader so
	// the request gets ordered even if the original leader never did. At
	// most one replica adopts per retry round: orphan duplicates would
	// otherwise interfere with each other across instance spaces.
	rotated := types.ReplicaID((int(c.cfg.Leader) + p.retries) % c.n)
	direct := &Request{Cmd: p.cmd, Orig: noOrig}
	c.cfg.Costs.ChargeSign(ctx)
	direct.Sig = signBody(c.cfg.Auth, direct)
	ctx.Send(types.ReplicaNode(rotated), direct)

	// Capped exponential backoff with deterministic jitter on subsequent
	// retries (proc.Backoff). The first retry timer (armed at Submit) is
	// un-jittered, so default behavior up to and including the first
	// retry is byte-identical.
	ctx.SetTimer(proc.TimerID(ts*4+timerKindRetry), proc.Backoff(ctx, c.cfg.RetryTimeout, p.retries))
	ctx.SetTimer(proc.TimerID(ts*4+timerKindSlow), c.cfg.SlowPathTimeout)
}

// finish completes a request and notifies the driver.
func (c *Client) finish(ctx proc.Context, ts uint64, p *pendingReq, res types.Result, fast bool) {
	delete(c.pending, ts)
	ctx.CancelTimer(proc.TimerID(ts*4 + timerKindSlow))
	ctx.CancelTimer(proc.TimerID(ts*4 + timerKindRetry))
	c.stats.Completed++
	c.cfg.Driver.Completed(ctx, c, workload.Completion{
		Cmd:      p.cmd,
		Result:   res,
		Latency:  ctx.Now() - p.issued,
		At:       ctx.Now(),
		FastPath: fast,
	})
}

func sortedGroupKeys(group map[types.ReplicaID]*SpecReply) []types.ReplicaID {
	out := make([]types.ReplicaID, 0, len(group))
	for rid := range group {
		out = append(out, rid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
