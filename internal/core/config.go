package core

import (
	"errors"
	"fmt"
	"time"

	"ezbft/internal/auth"
	"ezbft/internal/engine"
	"ezbft/internal/proc"
	"ezbft/internal/store"
	"ezbft/internal/types"
)

// Configuration errors.
var (
	ErrBadClusterSize = errors.New("core: cluster size must be 3f+1 for some f >= 1")
	ErrBadReplicaID   = errors.New("core: replica id out of range")
	ErrNilApp         = errors.New("core: application must not be nil")
	ErrNilAuth        = errors.New("core: authenticator must not be nil")
)

// Defaults for timeouts; experiments override them to match their topology.
const (
	DefaultResendTimeout = 2 * time.Second
	// DefaultBatchDelay is how long an accumulating batch waits for more
	// requests before it is flushed (only relevant when BatchSize > 1). It
	// must stay far below client retry timeouts.
	DefaultBatchDelay = 2 * time.Millisecond
	// MaxBatchSize bounds the requests a single instance may order.
	MaxBatchSize = maxBatch - 1
)

// ReplicaConfig configures one ezBFT replica.
type ReplicaConfig struct {
	// Self is this replica's identifier in [0, N).
	Self types.ReplicaID
	// N is the cluster size; must be 3f+1.
	N int
	// App is the replicated application; ezBFT requires speculative
	// execution support.
	App types.SpeculativeApplication
	// Auth signs and verifies messages for this replica.
	Auth auth.Authenticator
	// Costs holds the virtual processing costs charged in simulation.
	Costs proc.Costs
	// ResendTimeout bounds how long a replica waits for a SPECORDER after
	// forwarding a RESENDREQ before initiating an owner change.
	ResendTimeout time.Duration
	// DepWaitTimeout bounds how long final execution waits for an
	// uncommitted dependency before initiating an owner change for the
	// dependency's instance space.
	DepWaitTimeout time.Duration
	// BatchSize is the maximum number of client requests this replica, as
	// command-leader, orders per instance. 0 or 1 disables batching and
	// reproduces the paper's one-instance-per-request flow exactly.
	BatchSize int
	// BatchDelay is how long an incomplete batch waits for more requests
	// before flushing (default DefaultBatchDelay; only used when
	// BatchSize > 1).
	BatchDelay time.Duration
	// BatchAdaptive enables adaptive batch sizing (see
	// engine.Batcher.SetAdaptive): idle leaders flush immediately,
	// saturated ones stretch toward BatchDelay.
	BatchAdaptive bool
	// CheckpointInterval enables the log lifecycle subsystem (see
	// checkpoint.go): every instance space is checkpointed each time a
	// replica's contiguously executed prefix crosses a multiple of this
	// many slots, and entries below a 2f+1-stable checkpoint are truncated.
	// 0 (the default) disables checkpointing entirely — no extra messages,
	// byte-identical to the pre-checkpointing protocol.
	CheckpointInterval uint64
	// LogRetention keeps this many additional slots below the stable
	// low-water mark when truncating (0 = truncate everything below it).
	LogRetention uint64
	// ExecWorkers sizes the deterministic parallel executor: final
	// execution of each linearized closure is scheduled as a level-ordered
	// DAG across this many goroutines when the application implements
	// types.ConcurrentApplication (see executor.go). 0 or 1 — or an
	// application without the contract — keeps the exact serial execution
	// path; every observable (results, execution log, reply order,
	// simulated timings) is byte-identical at any setting.
	ExecWorkers int
	// Store, when non-nil, is the replica's durability layer (see
	// internal/store and durable.go): ordering-critical state is
	// write-ahead-logged through it before the replica acts, stable
	// checkpoints cut its snapshot, and a restart rebuilds the replica
	// from it. Nil (the default) keeps the replica memoryless across
	// restarts — byte-identical to the pre-durability behaviour.
	Store store.Store
	// Byzantine, when non-nil, makes this replica misbehave (tests and
	// fault-injection experiments only).
	Byzantine *ByzantineBehavior
	// Behavior, when non-nil, intercepts every message this replica sends
	// and receives (adversarial scenario harness; see engine.Behavior).
	Behavior engine.Behavior
}

// ByzantineBehavior selects misbehaviours for fault-injection runs.
type ByzantineBehavior struct {
	// EquivocateInstances makes the replica, as command-leader, assign
	// different instance numbers for the same request to different replica
	// subsets — the misbehaviour the client's POM check detects.
	EquivocateInstances bool
	// LieAboutDeps makes the replica, as a participant, always report an
	// empty dependency set and sequence number 1 (the paper's Fig 3
	// scenario).
	LieAboutDeps bool
	// Mute makes the replica stop sending any messages (fail-silent while
	// still receiving; distinguishable from a crash only externally).
	Mute bool
}

func (c *ReplicaConfig) validate() error {
	if c.N < 4 || (c.N-1)%3 != 0 {
		return fmt.Errorf("%w: N=%d", ErrBadClusterSize, c.N)
	}
	if c.Self < 0 || int(c.Self) >= c.N {
		return fmt.Errorf("%w: %d", ErrBadReplicaID, c.Self)
	}
	if c.App == nil {
		return ErrNilApp
	}
	if c.Auth == nil {
		return ErrNilAuth
	}
	if c.ResendTimeout <= 0 {
		c.ResendTimeout = DefaultResendTimeout
	}
	if c.DepWaitTimeout <= 0 {
		c.DepWaitTimeout = c.ResendTimeout
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.BatchSize > MaxBatchSize {
		return fmt.Errorf("core: batch size %d exceeds maximum %d", c.BatchSize, MaxBatchSize)
	}
	if c.BatchDelay <= 0 {
		c.BatchDelay = DefaultBatchDelay
	}
	if c.ExecWorkers < 0 {
		return fmt.Errorf("core: exec workers must be >= 0, got %d", c.ExecWorkers)
	}
	return nil
}

// F returns the fault threshold for a cluster of n replicas (n = 3f+1).
func F(n int) int { return (n - 1) / 3 }

// FastQuorum returns the fast-path quorum size (3f+1: every replica).
func FastQuorum(n int) int { return n }

// SlowQuorum returns the slow-path quorum size (2f+1).
func SlowQuorum(n int) int { return 2*F(n) + 1 }

// WeakQuorum returns f+1, the size that guarantees one correct member.
func WeakQuorum(n int) int { return F(n) + 1 }

// SlowQuorumMembers returns the command-leader's known slow quorum (the
// paper's "Nitpick" in §IV-C): leader and the 2f next replicas in ring
// order. Clients use it to pick which dependency sets to combine when more
// than 2f+1 replies arrive.
func SlowQuorumMembers(leader types.ReplicaID, n int) []types.ReplicaID {
	q := make([]types.ReplicaID, 0, SlowQuorum(n))
	for i := 0; i < SlowQuorum(n); i++ {
		q = append(q, types.ReplicaID((int(leader)+i)%n))
	}
	return q
}
