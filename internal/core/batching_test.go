package core

import (
	"fmt"
	"testing"
	"time"

	"ezbft/internal/codec"
	"ezbft/internal/sim"
	"ezbft/internal/types"
)

// --- wire format ---

func sampleBatchSpecOrder() *SpecOrder {
	reqA := sampleRequest()
	reqB := &Request{
		Cmd: types.Command{
			Client: 4, Timestamp: 2, Op: types.OpIncr, Key: "k2",
		},
		Orig: noOrig,
		Sig:  []byte{7, 7},
	}
	so := &SpecOrder{
		Owner:   5,
		Inst:    types.InstanceID{Space: 1, Slot: 9},
		Deps:    types.NewInstanceSet(types.InstanceID{Space: 0, Slot: 4}),
		Seq:     11,
		LogHash: types.Digest{1},
		Req:     *reqA,
		Batch:   []Request{*reqB},
		Sig:     []byte{9, 9},
	}
	so.CmdDigest = BatchDigest(so.CmdDigests())
	return so
}

func sampleBatchSpecReply(idx uint32) *SpecReply {
	so := sampleBatchSpecOrder()
	sr := &SpecReply{
		Owner:     5,
		Inst:      so.Inst,
		Deps:      types.NewInstanceSet(types.InstanceID{Space: 2, Slot: 1}),
		Seq:       12,
		CmdDigest: so.ReqAt(int(idx)).Cmd.Digest(),
		Client:    so.ReqAt(int(idx)).Cmd.Client,
		Timestamp: so.ReqAt(int(idx)).Cmd.Timestamp,
		Replica:   2,
		Result:    types.Result{OK: true, Value: []byte("out")},
		Batched:   true,
		BatchIdx:  idx,
		SORef:     so.CmdDigest,
		Sig:       []byte{4},
	}
	if idx == 0 {
		// Evidence slimming: only the BatchIdx-0 reply embeds the proposal.
		sr.SO = so
	}
	return sr
}

// TestBatchedMessageRoundTrips pins the batched wire layouts (tags 21–25)
// the way TestMessageRoundTrips pins the unbatched ones.
func TestBatchedMessageRoundTrips(t *testing.T) {
	mixedPOM := &POM{Suspect: 1, Owner: 1, Client: 3, A: sampleBatchSpecOrder(), B: sampleSpecOrder()}
	batchedHist := &OwnerChange{
		Suspect: 1, NewOwner: 2, Replica: 3,
		History: []HistEntry{{
			Inst: types.InstanceID{Space: 1, Slot: 9}, Status: HistSpecOrdered,
			Cmd:   sampleBatchSpecOrder().Req.Cmd,
			Batch: []types.Command{sampleBatchSpecOrder().Batch[0].Cmd},
			Deps:  types.NewInstanceSet(), Seq: 1, Owner: 1, SO: sampleBatchSpecOrder(),
		}},
		Sig: []byte{6},
	}
	msgs := []codec.Message{
		sampleBatchSpecOrder(),
		sampleBatchSpecReply(0),
		sampleBatchSpecReply(1),
		&CommitFast{Client: 3, Inst: types.InstanceID{Space: 1, Slot: 9}, Cert: []*SpecReply{sampleBatchSpecReply(1)}},
		&Commit{
			Client: 3, Timestamp: 7, Inst: types.InstanceID{Space: 1, Slot: 9},
			Deps: types.NewInstanceSet(types.InstanceID{Space: 0, Slot: 2}),
			Seq:  4, Cert: []*SpecReply{sampleBatchSpecReply(0)}, Sig: []byte{8},
		},
		mixedPOM,
		batchedHist,
	}
	for _, m := range msgs {
		out := roundTrip(t, m)
		if string(codec.Marshal(out)) != string(codec.Marshal(m)) {
			t.Errorf("%T (tag %d): round trip not byte-identical", m, m.Tag())
		}
	}
}

// TestUnbatchedTagsUnchanged pins that batch-of-one messages keep the
// original tags (and therefore the original byte layout): the unbatched
// protocol is byte-for-byte what it was before batching existed.
func TestUnbatchedTagsUnchanged(t *testing.T) {
	cases := []struct {
		msg  codec.Message
		want uint8
	}{
		{sampleSpecOrder(), tagSpecOrder},
		{sampleSpecReply(), tagSpecReply},
		{&CommitFast{Cert: []*SpecReply{sampleSpecReply()}}, tagCommitFast},
		{&Commit{Cert: []*SpecReply{sampleSpecReply()}}, tagCommit},
		{&POM{A: sampleSpecOrder(), B: sampleSpecOrder()}, tagPOM},
		{sampleBatchSpecOrder(), tagSpecOrderBatch},
		{sampleBatchSpecReply(0), tagSpecReplyBatch},
	}
	for _, tc := range cases {
		if got := tc.msg.Tag(); got != tc.want {
			t.Errorf("%T: tag %d, want %d", tc.msg, got, tc.want)
		}
	}
}

// TestBatchDigestSemantics: a batch of one digests to the command's own
// digest (the pre-batching d = H(m)); larger batches bind every command and
// its position.
func TestBatchDigestSemantics(t *testing.T) {
	a := putCmd("a", "1").Digest()
	b := putCmd("b", "2").Digest()
	if BatchDigest([]types.Digest{a}) != a {
		t.Fatal("batch of one must digest to the command digest")
	}
	if BatchDigest([]types.Digest{a, b}) == BatchDigest([]types.Digest{b, a}) {
		t.Fatal("batch digest must bind command positions")
	}
	if BatchDigest([]types.Digest{a, b}) == a || BatchDigest([]types.Digest{a, b}) == b {
		t.Fatal("batch digest must differ from member digests")
	}
}

// TestSignedBodyCoversBatchIdx: replies for different commands of one batch
// must not be interchangeable.
func TestSignedBodyCoversBatchIdx(t *testing.T) {
	r0 := sampleBatchSpecReply(0)
	r1 := sampleBatchSpecReply(0)
	r1.BatchIdx = 1
	if string(r0.SignedBody()) == string(r1.SignedBody()) {
		t.Fatal("batch index not covered by the reply signature")
	}
}

// --- protocol behaviour ---

// batchScripts builds one single-command script per client, all INCRs on
// per-client keys (so dependencies stay empty and the fast path is
// reachable).
func batchScripts(clients int) [][]types.Command {
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		scripts[c] = []types.Command{putCmd(fmt.Sprintf("bk%d", c), fmt.Sprintf("v%d", c))}
	}
	return scripts
}

// TestBatchingFastPath: eight clients at one leader with BatchSize 4 all
// commit on the fast path, and the leader provably coalesced them — fewer
// instances than commands, one SPECORDER signature per batch.
func TestBatchingFastPath(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 4
	opts.batchDelay = 5 * time.Millisecond
	const clients = 8
	leaders := make([]types.ReplicaID, clients)
	tc := newTestCluster(t, opts, leaders, batchScripts(clients))
	if !tc.run(10 * time.Second) {
		t.Fatal("commands did not complete")
	}
	tc.rt.Run(tc.rt.Now() + time.Second)

	r0 := tc.replicas[0]
	instances := r0.nextSlot - 1
	if instances >= clients {
		t.Fatalf("no batching: %d instances for %d commands", instances, clients)
	}
	if got := r0.Stats().Ordered; got != clients {
		t.Fatalf("leader ordered %d commands, want %d", got, clients)
	}
	for i, d := range tc.drivers {
		if len(d.Results) != 1 || !d.Results[0].FastPath {
			t.Fatalf("client %d: results %+v", i, d.Results)
		}
	}
	// Every replica executed every command.
	for _, r := range tc.replicas {
		if got := r.Stats().FinalExecutions; got != clients {
			t.Fatalf("%v: %d final executions, want %d", r.cfg.Self, got, clients)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestBatchingContention: batched interfering commands (all clients hammer
// one key) stay consistent and converge across replicas.
func TestBatchingContention(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 3
	opts.batchDelay = 5 * time.Millisecond
	const clients = 6
	// Clients split across two leaders, all writing the hot key.
	leaders := make([]types.ReplicaID, clients)
	scripts := make([][]types.Command, clients)
	for c := 0; c < clients; c++ {
		if c >= clients/2 {
			leaders[c] = 3
		}
		scripts[c] = []types.Command{putCmd("hot", fmt.Sprintf("c%d", c)), incrCmd("ctr")}
	}
	tc := newTestCluster(t, opts, leaders, scripts)
	if !tc.run(20 * time.Second) {
		t.Fatal("commands did not complete")
	}
	tc.rt.Run(tc.rt.Now() + time.Second)
	for _, r := range tc.correctReplicas() {
		v, ok := tc.apps[r.cfg.Self].Get("ctr")
		if !ok || kvstoreCounter(v) != clients {
			t.Fatalf("%v: ctr=%d, want %d (exactly-once)", r.cfg.Self, kvstoreCounter(v), clients)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestBatchingByzantineEquivocation: a byzantine owner equivocates over
// whole batches (same batch signed at different instances for different
// replica halves). Clients detect the conflicting embedded SPECORDERs,
// the POM freezes the equivocator's space, and every command still
// executes exactly once.
func TestBatchingByzantineEquivocation(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 2
	opts.batchDelay = 5 * time.Millisecond
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{0: {EquivocateInstances: true}}
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	const clients = 4
	leaders := make([]types.ReplicaID, clients) // all at the equivocator
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		scripts[c] = []types.Command{incrCmd("n")}
	}
	tc := newTestCluster(t, opts, leaders, scripts)
	if !tc.run(60 * time.Second) {
		t.Fatal("commands did not complete despite batch equivocation")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	poms := uint64(0)
	for _, c := range tc.clients {
		poms += c.Stats().POMsSent
	}
	if poms == 0 {
		t.Fatal("no client sent a POM")
	}
	for _, r := range tc.correctReplicas() {
		if !r.Frozen(0) {
			t.Fatalf("%v: equivocator's space not frozen", r.cfg.Self)
		}
		v, ok := tc.apps[r.cfg.Self].Get("n")
		if !ok || kvstoreCounter(v) != clients {
			t.Fatalf("%v: n=%d, want %d (exactly-once)", r.cfg.Self, kvstoreCounter(v), clients)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestBatchingDuplicateAcrossBatches: the client's retry fires while its
// request is still queued in the leader's batch, so the request is ordered
// twice — once in the original leader's batch (flushed by the RESENDREQ)
// and once at the rotated leader. Exactly-once execution must hold across
// the duplicate instances.
func TestBatchingDuplicateAcrossBatches(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 64                      // never fills from one client
	opts.batchDelay = 400 * time.Millisecond // longer than the retry timeout
	opts.retryTimeout = 100 * time.Millisecond
	opts.resendTimeout = 500 * time.Millisecond
	tc := newTestCluster(t, opts,
		[]types.ReplicaID{0},
		[][]types.Command{{incrCmd("n"), incrCmd("n")}},
	)
	if !tc.run(30 * time.Second) {
		t.Fatal("commands did not complete")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	if tc.clients[0].Stats().Retries == 0 {
		t.Fatal("test did not exercise the retry path")
	}
	for _, r := range tc.correctReplicas() {
		v, ok := tc.apps[r.cfg.Self].Get("n")
		if !ok || kvstoreCounter(v) != 2 {
			t.Fatalf("%v: n=%d, want 2 (exactly-once across duplicate batches)", r.cfg.Self, kvstoreCounter(v))
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
	tc.checkNontriviality()
}

// TestBatchingOwnerChangeMidBatch: the leader goes mute with requests
// accumulating in its batch. The owner change freezes its space and the
// clients' retry rotation re-proposes the stranded commands — in fresh
// batches at the new leader — exactly once.
func TestBatchingOwnerChangeMidBatch(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 4
	opts.batchDelay = 5 * time.Millisecond
	opts.byz = map[types.ReplicaID]*ByzantineBehavior{0: {Mute: true}}
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	const clients = 4
	leaders := make([]types.ReplicaID, clients)
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		scripts[c] = []types.Command{incrCmd("n")}
	}
	tc := newTestCluster(t, opts, leaders, scripts)
	if !tc.run(60 * time.Second) {
		t.Fatal("commands did not complete despite mid-batch owner change")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	for _, r := range tc.correctReplicas() {
		if !r.Frozen(0) {
			t.Fatalf("%v: mute leader's space not frozen", r.cfg.Self)
		}
		v, ok := tc.apps[r.cfg.Self].Get("n")
		if !ok || kvstoreCounter(v) != clients {
			t.Fatalf("%v: n=%d, want %d (exactly-once)", r.cfg.Self, kvstoreCounter(v), clients)
		}
	}
	tc.checkConsistency()
	tc.checkStateConvergence()
}

// TestBatchingOwnerChangeRecoversWholeBatch: a batch is spec-ordered
// everywhere but its leader crashes before any commit completes (replies
// from two replicas are withheld so clients cannot decide). The owner
// change must recover the batch whole — every command, in order — via
// Condition 2, and the clients then complete against the frozen space.
func TestBatchingOwnerChangeRecoversWholeBatch(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 4
	opts.batchDelay = 5 * time.Millisecond
	opts.retryTimeout = 300 * time.Millisecond
	opts.resendTimeout = 200 * time.Millisecond
	const clients = 4
	leaders := make([]types.ReplicaID, clients)
	scripts := make([][]types.Command, clients)
	for c := range scripts {
		scripts[c] = []types.Command{putCmd(fmt.Sprintf("rk%d", c), "v")}
	}
	tc := newTestCluster(t, opts, leaders, scripts)

	// Withhold SPECREPLYs from R2 and R3: clients see only two replies and
	// can neither fast- nor slow-commit.
	tc.rt.SetFilter(func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if _, ok := msg.(*SpecReply); ok && from.IsReplica() && from.Replica() >= 2 && to.IsClient() {
			return sim.Drop, 0
		}
		return sim.Deliver, 0
	})
	tc.rt.Start()
	// Run until every replica has the batch spec-ordered, then crash the
	// leader and lift the filter.
	ok := tc.rt.RunUntil(func() bool {
		for _, r := range tc.replicas {
			if r.log.space(0).maxSlot < 1 {
				return false
			}
		}
		return true
	}, 10*time.Second)
	if !ok {
		t.Fatal("batch never spec-ordered everywhere")
	}
	if got := tc.replicas[1].log.get(types.InstanceID{Space: 0, Slot: 1}).nCmds(); got != clients {
		t.Fatalf("batch size at R1 = %d, want %d", got, clients)
	}
	tc.rt.Crash(types.ReplicaNode(0))
	tc.rt.SetFilter(nil)

	done := tc.rt.RunUntil(func() bool {
		for _, d := range tc.drivers {
			if len(d.Results) < 1 {
				return false
			}
		}
		return true
	}, 60*time.Second)
	if !done {
		t.Fatal("commands did not complete after leader crash")
	}
	tc.rt.Run(tc.rt.Now() + 2*time.Second)

	inst := types.InstanceID{Space: 0, Slot: 1}
	for _, r := range tc.replicas[1:] {
		e := r.log.get(inst)
		if e == nil || e.status != StatusExecuted {
			t.Fatalf("%v: batch instance %v not executed (entry %v)", r.cfg.Self, inst, e)
		}
		if e.nCmds() != clients {
			t.Fatalf("%v: recovered batch has %d commands, want %d — owner change split the batch",
				r.cfg.Self, e.nCmds(), clients)
		}
		for c := 0; c < clients; c++ {
			if v, ok := tc.apps[r.cfg.Self].Get(fmt.Sprintf("rk%d", c)); !ok || string(v) != "v" {
				t.Fatalf("%v: rk%d=%q, want v", r.cfg.Self, c, v)
			}
		}
	}
	// Survivors only: R0 is frozen in time.
	ref := tc.apps[1].Digest()
	for i := 2; i < 4; i++ {
		if tc.apps[i].Digest() != ref {
			t.Fatalf("replica %d state diverged", i)
		}
	}
	tc.checkConsistency()
}

// captureCtx records sends for direct-handler tests.
type captureCtx struct {
	noopCtx
	sends []codec.Message
}

func (c *captureCtx) Send(_ types.NodeID, msg codec.Message) { c.sends = append(c.sends, msg) }

// TestSameInstanceBatchEquivocationPOM: an equivocating leader signs two
// DIFFERENT batches for the SAME instance, both containing the client's
// command. The client must not combine replies across the two proposals
// (they group separately), must emit a POM, and replicas must accept that
// POM as equivocation evidence.
func TestSameInstanceBatchEquivocationPOM(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0}, [][]types.Command{{}})
	cl := tc.clients[0]
	leaderAuth := tc.replicas[0].cfg.Auth

	ctx := &captureCtx{}
	cl.Submit(ctx, putCmd("k", "v"))
	p := cl.pending[1]

	mkSO := func(extraKey string) *SpecOrder {
		extra := Request{Cmd: types.Command{Client: 99, Timestamp: 1, Op: types.OpPut, Key: extraKey}, Orig: noOrig, Sig: []byte{1}}
		so := &SpecOrder{
			Owner: 0,
			Inst:  types.InstanceID{Space: 0, Slot: 1},
			Deps:  types.NewInstanceSet(),
			Seq:   1,
			Req:   *p.req,
			Batch: []Request{extra},
		}
		so.CmdDigest = BatchDigest(so.CmdDigests())
		so.Sig = leaderAuth.Sign(so.SignedBody())
		return so
	}
	so1, so2 := mkSO("a"), mkSO("b")
	if so1.CmdDigest == so2.CmdDigest {
		t.Fatal("test setup: batches must differ")
	}

	mkReply := func(from types.ReplicaID, so *SpecOrder) *SpecReply {
		sr := &SpecReply{
			Owner: 0, Inst: so.Inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: p.digest, Client: cl.cfg.ID, Timestamp: 1,
			Replica: from, Result: types.Result{OK: true},
			Batched: true, BatchIdx: 0, SORef: so.CmdDigest, SO: so,
		}
		a, err := tc.replicas[from].cfg.Auth, error(nil)
		_ = err
		sr.Sig = a.Sign(sr.SignedBody())
		return sr
	}

	cl.handleSpecReply(ctx, mkReply(1, so1))
	cl.handleSpecReply(ctx, mkReply(2, so2))

	if cl.stats.POMsSent != 1 {
		t.Fatalf("POMs sent = %d, want 1 (same-instance batch equivocation)", cl.stats.POMsSent)
	}
	// Replies for different proposals must not share a quorum group.
	if len(p.replies) != 2 {
		t.Fatalf("reply groups = %d, want 2 (one per proposal)", len(p.replies))
	}
	var pom *POM
	for _, m := range ctx.sends {
		if pm, ok := m.(*POM); ok {
			pom = pm
		}
	}
	if pom == nil {
		t.Fatal("no POM broadcast")
	}
	// A replica accepts the POM and votes for an owner change.
	r3 := tc.replicas[3]
	rctx := &captureCtx{}
	r3.Receive(rctx, types.ClientNode(0), pom)
	if !r3.oc.sentStart[changeKey{0, 0}] {
		t.Fatal("replica did not start an owner change on the POM")
	}
}

// TestSpecReplyEvidenceSlimming: only the BatchIdx-0 reply of a batched
// instance embeds the full SPECORDER; the rest carry the signed SORef
// digest and are dramatically smaller on the wire, killing the O(k²)
// reply-byte blowup while every reply still names its proposal.
func TestSpecReplyEvidenceSlimming(t *testing.T) {
	opts := defaultOpts()
	opts.batchSize = 4
	opts.batchDelay = 5 * time.Millisecond
	const clients = 8
	leaders := make([]types.ReplicaID, clients)
	tc := newTestCluster(t, opts, leaders, batchScripts(clients))
	if !tc.run(10 * time.Second) {
		t.Fatal("commands did not complete")
	}
	tc.rt.Run(tc.rt.Now() + time.Second)

	var withSO, slim int
	for _, r := range tc.replicas {
		for _, reply := range r.replyCache {
			if !reply.Batched {
				continue
			}
			if reply.SORef == (types.Digest{}) {
				t.Fatal("batched reply without a proposal reference")
			}
			if reply.BatchIdx == 0 {
				if reply.SO == nil {
					t.Fatal("BatchIdx-0 reply lost its SPECORDER evidence")
				}
				if reply.SO.CmdDigest != reply.SORef {
					t.Fatal("SORef does not name the embedded proposal")
				}
				withSO++
			} else {
				if reply.SO != nil {
					t.Fatalf("BatchIdx-%d reply still embeds the full SPECORDER", reply.BatchIdx)
				}
				if len(codec.Marshal(reply)) >= len(codec.Marshal(&SpecReply{
					Owner: reply.Owner, Inst: reply.Inst, Deps: reply.Deps, Seq: reply.Seq,
					CmdDigest: reply.CmdDigest, Client: reply.Client, Timestamp: reply.Timestamp,
					Replica: reply.Replica, Result: reply.Result,
					Batched: true, BatchIdx: reply.BatchIdx, SORef: reply.SORef,
					SO: reply.SO, Sig: reply.Sig,
				}))+64*3 {
					// A slim reply must be smaller than the same reply plus a
					// 4-command batch (each command ≥ ~64 bytes with envelope).
					t.Fatal("slim reply not actually smaller")
				}
				slim++
			}
		}
	}
	if withSO == 0 || slim == 0 {
		t.Fatalf("slimming not exercised: %d full, %d slim replies", withSO, slim)
	}
}

// TestDeferredSlimCommit: a slow-path COMMIT whose evidence-slimmed
// certificate (BatchIdx > 0, no embedded SPECORDER) arrives before the
// SPECORDER is parked, then applied when the proposal arrives — the
// instance commits instead of being dropped.
func TestDeferredSlimCommit(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0, 0}, [][]types.Command{{}, {}})
	leaderAuth := tc.replicas[0].cfg.Auth
	cl := tc.clients[0]

	ctx := &captureCtx{}
	cl.Submit(ctx, putCmd("k", "v"))
	p := cl.pending[1]

	// Leader R0 signs a batch of two: client 1's command first, our
	// client's command at BatchIdx 1.
	other := Request{Cmd: types.Command{Client: 1, Timestamp: 1, Op: types.OpPut, Key: "o"}, Orig: noOrig}
	other.Sig = tc.clients[1].cfg.Auth.Sign(other.SignedBody())
	so := &SpecOrder{
		Owner: 0,
		Inst:  types.InstanceID{Space: 0, Slot: 1},
		Deps:  types.NewInstanceSet(),
		Seq:   1,
		Req:   other,
		Batch: []Request{*p.req},
	}
	so.CmdDigest = BatchDigest(so.CmdDigests())
	sp := tc.replicas[0].log.space(0)
	sp.extendHash(so.Inst, so.CmdDigest)
	so.LogHash = sp.logHash
	so.Sig = leaderAuth.Sign(so.SignedBody())

	// 2f+1 slim replies for our command (BatchIdx 1, SORef only).
	cert := make([]*SpecReply, 0, 3)
	for _, rid := range []types.ReplicaID{0, 1, 2} {
		sr := &SpecReply{
			Owner: 0, Inst: so.Inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: p.digest, Client: cl.cfg.ID, Timestamp: 1,
			Replica: rid, Result: types.Result{OK: true},
			Batched: true, BatchIdx: 1, SORef: so.CmdDigest,
		}
		sr.Sig = tc.replicas[rid].cfg.Auth.Sign(sr.SignedBody())
		cert = append(cert, sr)
	}
	commit := &Commit{
		Client: cl.cfg.ID, Timestamp: 1, Inst: so.Inst,
		Deps: types.NewInstanceSet(), Seq: 1, Cert: cert,
	}
	commit.Sig = cl.cfg.Auth.Sign(commit.SignedBody())

	// R3 sees the COMMIT before the SPECORDER: the decision must be
	// parked, not dropped.
	r3 := tc.replicas[3]
	rctx := &captureCtx{}
	r3.Receive(rctx, types.ClientNode(cl.cfg.ID), commit)
	if r3.stats.DeferredCommits != 1 {
		t.Fatalf("deferred commits = %d, want 1", r3.stats.DeferredCommits)
	}
	if r3.log.get(so.Inst) != nil {
		t.Fatal("slim certificate installed an entry on its own")
	}
	if r3.stats.SlowCommits != 0 {
		t.Fatal("commit applied before the SPECORDER arrived")
	}

	// The SPECORDER arrives: the parked decision applies and the whole
	// batch commits.
	r3.Receive(rctx, types.ReplicaNode(0), so)
	e := r3.log.get(so.Inst)
	if e == nil || e.status < StatusCommitted {
		t.Fatalf("instance not committed after the SPECORDER arrived (entry %v)", e)
	}
	if e.nCmds() != 2 {
		t.Fatalf("committed batch has %d commands, want 2", e.nCmds())
	}
	if r3.stats.SlowCommits != 1 {
		t.Fatalf("slow commits = %d, want 1", r3.stats.SlowCommits)
	}
}

// TestDeferredSlimCommitDrainedByFullCert: a parked slim decision must
// also drain when the instance becomes known through ANOTHER client's
// full-evidence certificate rather than the SPECORDER itself — otherwise
// the parked client's decision (deps/seq union, its COMMITREPLY) would be
// stranded forever.
func TestDeferredSlimCommitDrainedByFullCert(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0, 0}, [][]types.Command{{}, {}})
	leaderAuth := tc.replicas[0].cfg.Auth
	cl0, cl1 := tc.clients[0], tc.clients[1]

	ctx := &captureCtx{}
	cl0.Submit(ctx, putCmd("k", "v"))
	p0 := cl0.pending[1]
	cl1.Submit(ctx, putCmd("o", "w"))
	p1 := cl1.pending[1]

	// Leader R0 signs a batch of two: client 1's command at idx 0, client
	// 0's at idx 1.
	so := &SpecOrder{
		Owner: 0,
		Inst:  types.InstanceID{Space: 0, Slot: 1},
		Deps:  types.NewInstanceSet(),
		Seq:   1,
		Req:   *p1.req,
		Batch: []Request{*p0.req},
	}
	so.CmdDigest = BatchDigest(so.CmdDigests())
	so.Sig = leaderAuth.Sign(so.SignedBody())

	mkCert := func(digest types.Digest, client types.ClientID, idx uint32, withSO bool) []*SpecReply {
		cert := make([]*SpecReply, 0, 3)
		for _, rid := range []types.ReplicaID{0, 1, 2} {
			sr := &SpecReply{
				Owner: 0, Inst: so.Inst, Deps: types.NewInstanceSet(), Seq: 1,
				CmdDigest: digest, Client: client, Timestamp: 1,
				Replica: rid, Result: types.Result{OK: true},
				Batched: true, BatchIdx: idx, SORef: so.CmdDigest,
			}
			if withSO && rid == 0 {
				sr.SO = so
			}
			sr.Sig = tc.replicas[rid].cfg.Auth.Sign(sr.SignedBody())
			cert = append(cert, sr)
		}
		return cert
	}

	// Client 0's slim commit (idx 1, no SPECORDER) arrives first: parked.
	commit0 := &Commit{
		Client: cl0.cfg.ID, Timestamp: 1, Inst: so.Inst,
		Deps: types.NewInstanceSet(), Seq: 1, Cert: mkCert(p0.digest, cl0.cfg.ID, 1, false),
	}
	commit0.Sig = cl0.cfg.Auth.Sign(commit0.SignedBody())
	r3 := tc.replicas[3]
	rctx := &captureCtx{}
	r3.Receive(rctx, types.ClientNode(cl0.cfg.ID), commit0)
	if r3.stats.DeferredCommits != 1 {
		t.Fatalf("deferred commits = %d, want 1", r3.stats.DeferredCommits)
	}

	// Client 1's full-evidence commit (idx 0, SPECORDER embedded) installs
	// the entry — and must drain client 0's parked decision with it.
	commit1 := &Commit{
		Client: cl1.cfg.ID, Timestamp: 1, Inst: so.Inst,
		Deps: types.NewInstanceSet(), Seq: 1, Cert: mkCert(p1.digest, cl1.cfg.ID, 0, true),
	}
	commit1.Sig = cl1.cfg.Auth.Sign(commit1.SignedBody())
	r3.Receive(rctx, types.ClientNode(cl1.cfg.ID), commit1)

	e := r3.log.get(so.Inst)
	if e == nil || e.status < StatusCommitted {
		t.Fatalf("instance not committed after full-evidence cert (entry %v)", e)
	}
	if len(r3.deferredCommits) != 0 {
		t.Fatal("parked decision not drained by the full-evidence certificate")
	}
	if r3.stats.SlowCommits != 2 {
		t.Fatalf("slow commits = %d, want 2 (the installing cert plus the drained one)", r3.stats.SlowCommits)
	}
}

// TestCommitRejectsSwappedSpecOrder: the SPECORDER embedded in a commit
// certificate rides outside the replies' signed bodies, so a Byzantine
// client could swap in an equivocating leader's OTHER signed proposal.
// The replica must refuse to install an entry from a certificate whose
// embedded proposal is not the one the signed replies vouch for — batched
// (signed SORef mismatch) and unbatched (positional digest mismatch)
// alike.
func TestCommitRejectsSwappedSpecOrder(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0, 0}, [][]types.Command{{}, {}})
	leaderAuth := tc.replicas[0].cfg.Auth
	cl := tc.clients[0]

	ctx := &captureCtx{}
	cl.Submit(ctx, putCmd("k", "v"))
	p := cl.pending[1]

	mkSO := func(first Request, extra *Request) *SpecOrder {
		so := &SpecOrder{
			Owner: 0,
			Inst:  types.InstanceID{Space: 0, Slot: 1},
			Deps:  types.NewInstanceSet(),
			Seq:   1,
			Req:   first,
		}
		if extra != nil {
			so.Batch = []Request{*extra}
		}
		so.CmdDigest = BatchDigest(so.CmdDigests())
		so.Sig = leaderAuth.Sign(so.SignedBody())
		return so
	}
	other := Request{Cmd: types.Command{Client: 1, Timestamp: 1, Op: types.OpPut, Key: "o"}, Orig: noOrig}
	other.Sig = tc.clients[1].cfg.Auth.Sign(other.SignedBody())
	evil := Request{Cmd: types.Command{Client: 1, Timestamp: 1, Op: types.OpPut, Key: "evil"}, Orig: noOrig}
	evil.Sig = tc.clients[1].cfg.Auth.Sign(evil.SignedBody())

	// Batched: replies vouch (via signed SORef) for batch A, but the
	// certificate embeds the leader's other signed batch B.
	soA := mkSO(*p.req, &other)
	soB := mkSO(*p.req, &evil)
	cert := make([]*SpecReply, 0, 3)
	for _, rid := range []types.ReplicaID{0, 1, 2} {
		sr := &SpecReply{
			Owner: 0, Inst: soA.Inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: p.digest, Client: cl.cfg.ID, Timestamp: 1,
			Replica: rid, Result: types.Result{OK: true},
			Batched: true, BatchIdx: 0, SORef: soA.CmdDigest,
		}
		sr.Sig = tc.replicas[rid].cfg.Auth.Sign(sr.SignedBody())
		cert = append(cert, sr)
	}
	cert[0].SO = soB // the swap
	commit := &Commit{
		Client: cl.cfg.ID, Timestamp: 1, Inst: soA.Inst,
		Deps: types.NewInstanceSet(), Seq: 1, Cert: cert,
	}
	commit.Sig = cl.cfg.Auth.Sign(commit.SignedBody())
	r3 := tc.replicas[3]
	r3.Receive(&captureCtx{}, types.ClientNode(cl.cfg.ID), commit)
	if e := r3.log.get(soA.Inst); e != nil {
		t.Fatalf("swapped batched SPECORDER installed an entry: %v", e)
	}
	if r3.stats.SlowCommits != 0 {
		t.Fatal("swapped batched SPECORDER committed")
	}

	// Unbatched: replies vouch for the client's command, but the embedded
	// proposal orders a different one (no SORef exists unbatched; the
	// positional digest binding must catch it).
	soEvil := mkSO(evil, nil)
	cert2 := make([]*SpecReply, 0, 3)
	for _, rid := range []types.ReplicaID{0, 1, 2} {
		sr := &SpecReply{
			Owner: 0, Inst: soEvil.Inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: p.digest, Client: cl.cfg.ID, Timestamp: 1,
			Replica: rid, Result: types.Result{OK: true},
			SO: soEvil,
		}
		sr.Sig = tc.replicas[rid].cfg.Auth.Sign(sr.SignedBody())
		cert2 = append(cert2, sr)
	}
	commit2 := &Commit{
		Client: cl.cfg.ID, Timestamp: 1, Inst: soEvil.Inst,
		Deps: types.NewInstanceSet(), Seq: 1, Cert: cert2,
	}
	commit2.Sig = cl.cfg.Auth.Sign(commit2.SignedBody())
	dropped := r3.stats.DroppedInvalid
	r3.Receive(&captureCtx{}, types.ClientNode(cl.cfg.ID), commit2)
	if e := r3.log.get(soEvil.Inst); e != nil {
		t.Fatalf("swapped unbatched SPECORDER installed an entry: %v", e)
	}
	if r3.stats.DroppedInvalid == dropped {
		t.Fatal("swapped unbatched SPECORDER not counted as invalid")
	}
	if r3.stats.FinalExecutions != 0 {
		t.Fatal("swapped unbatched SPECORDER executed")
	}
}

// TestValidateCertRejectsMixedBatches: a certificate mixing replies built
// from different proposals (or layouts) is not a quorum for anything.
func TestValidateCertRejectsMixedBatches(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, opts, []types.ReplicaID{0}, [][]types.Command{{}})
	r0 := tc.replicas[0]

	inst := types.InstanceID{Space: 0, Slot: 1}
	cmd := types.Command{Client: 0, Timestamp: 1, Op: types.OpPut, Key: "k"}
	mk := func(from types.ReplicaID, batched bool, idx uint32) *SpecReply {
		sr := &SpecReply{
			Owner: 0, Inst: inst, Deps: types.NewInstanceSet(), Seq: 1,
			CmdDigest: cmd.Digest(), Client: 0, Timestamp: 1,
			Replica: from, Result: types.Result{OK: true},
			Batched: batched, BatchIdx: idx,
		}
		sr.Sig = tc.replicas[from].cfg.Auth.Sign(sr.SignedBody())
		return sr
	}
	good := []*SpecReply{mk(0, true, 1), mk(1, true, 1), mk(2, true, 1)}
	if !r0.validateCert(noopCtx{}, good, inst, SlowQuorum(4), false) {
		t.Fatal("homogeneous cert rejected")
	}
	mixed := []*SpecReply{mk(0, true, 1), mk(1, false, 0), mk(2, true, 1)}
	if r0.validateCert(noopCtx{}, mixed, inst, SlowQuorum(4), false) {
		t.Fatal("cert mixing batched and unbatched replies accepted")
	}
	mixedIdx := []*SpecReply{mk(0, true, 1), mk(1, true, 2), mk(2, true, 1)}
	if r0.validateCert(noopCtx{}, mixedIdx, inst, SlowQuorum(4), false) {
		t.Fatal("cert mixing batch positions accepted")
	}
}
