package core

import (
	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/types"
)

// bodyMarshaler is implemented by every signed message: the byte string a
// signature covers is the deterministic codec encoding of the body.
type bodyMarshaler interface{ marshalBody(w *codec.Writer) }

// signBody signs m's body through a pooled scratch writer — the hot-path
// variant of a.Sign(m.SignedBody()) that allocates nothing at steady state.
func signBody(a auth.Authenticator, m bodyMarshaler) []byte {
	w := codec.GetWriter()
	m.marshalBody(w)
	sig := a.Sign(w.Bytes())
	codec.PutWriter(w)
	return sig
}

// verifyBody verifies sig over m's body through a pooled scratch writer.
func verifyBody(a auth.Authenticator, signer types.NodeID, m bodyMarshaler, sig []byte) error {
	w := codec.GetWriter()
	m.marshalBody(w)
	err := a.Verify(signer, w.Bytes(), sig)
	codec.PutWriter(w)
	return err
}

// SpecOrderVerifier returns a transport-side verification predicate for a
// replica in a cluster of n: SPECORDER messages have their leader signature
// and every embedded client signature checked (and are marked, so the
// replica's single-threaded process loop skips re-verifying them); all
// other message types pass through unverified and are checked in-loop as
// usual. The predicate is safe for concurrent use — feed it to
// transport.NewVerifyPool to verify independent batches in parallel across
// cores before they enter the process loop.
func SpecOrderVerifier(a auth.Authenticator, n int) func(msg codec.Message) bool {
	return func(msg codec.Message) bool {
		so, ok := msg.(*SpecOrder)
		if !ok {
			return true
		}
		if so.BatchSize() > MaxBatchSize {
			return false
		}
		owner := so.Owner.OwnerOf(n)
		if verifyBody(a, types.ReplicaNode(owner), so, so.Sig) != nil {
			return false
		}
		for i := 0; i < so.BatchSize(); i++ {
			req := so.ReqAt(i)
			if verifyBody(a, types.ClientNode(req.Cmd.Client), req, req.Sig) != nil {
				return false
			}
		}
		so.MarkSigVerified()
		return true
	}
}
