package core

import (
	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/types"
)

// bodyMarshaler is implemented by every signed message: the byte string a
// signature covers is the deterministic codec encoding of the body.
type bodyMarshaler interface{ marshalBody(w *codec.Writer) }

// signBody signs m's body through a pooled scratch writer — the hot-path
// variant of a.Sign(m.SignedBody()) that allocates nothing at steady state.
func signBody(a auth.Authenticator, m bodyMarshaler) []byte {
	w := codec.GetWriter()
	m.marshalBody(w)
	sig := a.Sign(w.Bytes())
	codec.PutWriter(w)
	return sig
}

// verifyBody verifies sig over m's body through a pooled scratch writer.
func verifyBody(a auth.Authenticator, signer types.NodeID, m bodyMarshaler, sig []byte) error {
	w := codec.GetWriter()
	m.marshalBody(w)
	err := a.Verify(signer, w.Bytes(), sig)
	codec.PutWriter(w)
	return err
}

// marker is the marking half of the engine.SignedMessage surface; every
// signed message embeds codec.Verified and therefore implements it.
type marker interface {
	MarkSigVerified()
	SigVerified() bool
}

// preVerify checks one signature the process loop would check
// unconditionally, marking the message on success. False drops the message
// (indistinguishable from loss).
func preVerify(a auth.Authenticator, signer types.NodeID, m bodyMarshaler, sig []byte, v marker) bool {
	if v.SigVerified() {
		return true
	}
	if verifyBody(a, signer, m, sig) != nil {
		return false
	}
	v.MarkSigVerified()
	return true
}

// tryMark checks a signature the process loop only verifies conditionally:
// success marks the message so the loop skips its check, failure leaves it
// unmarked for the loop to judge. Never drops.
func tryMark(a auth.Authenticator, signer types.NodeID, m bodyMarshaler, sig []byte, v marker) {
	if !v.SigVerified() && verifyBody(a, signer, m, sig) == nil {
		v.MarkSigVerified()
	}
}

// InboundVerifier returns the transport-side verification predicate for an
// ezBFT node (replica or client) in a cluster of n: every signature the
// receiving process loop checks unconditionally — REQUEST client
// signatures, SPECORDER leader + embedded client signatures, COMMIT client
// signatures, the SPECREPLY signatures inside COMMIT/COMMITFAST
// certificates, SPECREPLY/COMMITREPLY replica signatures at clients,
// owner-change sender signatures, and POM evidence signatures — is checked
// on the verifier-pool workers and the message marked, so the
// single-threaded process loop re-checks nothing but semantic bindings.
// Signatures the loop verifies only conditionally (a RESENDREQ's embedded
// request, certificate-embedded SPECORDERs, OWNERCHANGE history proofs,
// NEWOWNER proof elements) are verified opportunistically: valid ones are
// marked, invalid ones pass through unmarked for the loop to judge, so
// pool-on and pool-off behaviour stay equivalent. The predicate is safe
// for concurrent use — feed it to transport.NewVerifyPool.
func InboundVerifier(a auth.Authenticator, n int) func(msg codec.Message) bool {
	return func(msg codec.Message) bool {
		switch m := msg.(type) {
		case *Request:
			return preVerify(a, types.ClientNode(m.Cmd.Client), m, m.Sig, m)
		case *SpecOrder:
			return preVerifySpecOrder(a, n, m)
		case *SpecReply:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *CommitFast:
			return preVerifyCert(a, n, m.Cert)
		case *Commit:
			if !preVerify(a, types.ClientNode(m.Client), m, m.Sig, m) {
				return false
			}
			return preVerifyCert(a, n, m.Cert)
		case *CommitReply:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *ResendReq:
			// The original leader only verifies the embedded request when it
			// has not ordered it yet; mark opportunistically, never drop.
			tryMark(a, types.ClientNode(m.Req.Cmd.Client), &m.Req, m.Req.Sig, &m.Req)
			return true
		case *StartOwnerChange:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *OwnerChange:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *NewOwnerMsg:
			if !preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m) {
				return false
			}
			// Proof elements are counted (not all required) in-loop; mark the
			// valid ones so the count costs no further verification.
			for _, oc := range m.Proof {
				tryMark(a, types.ReplicaNode(oc.Replica), oc, oc.Sig, oc)
			}
			return true
		case *POM:
			return preVerifyPOM(a, n, m)
		case *CheckpointMsg:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *CatchupReq:
			return preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m)
		case *CatchupResp:
			if !preVerify(a, types.ReplicaNode(m.Replica), m, m.Sig, m) {
				return false
			}
			// Proof votes are counted (2f+1 of them required, not all) in
			// the loop; mark the valid ones so the count re-verifies nothing.
			for _, v := range m.Proof {
				tryMark(a, types.ReplicaNode(v.Replica), v, v.Sig, v)
			}
			return true
		case *SOFetch:
			return preVerify(a, types.ClientNode(m.Client), m, m.Sig, m)
		default:
			return true
		}
	}
}

// SpecOrderVerifier is the PR-2 predicate restricted to SPECORDER frames;
// it survives for callers that only want ordering-frame coverage.
// InboundVerifier supersedes it for full-coverage deployments.
func SpecOrderVerifier(a auth.Authenticator, n int) func(msg codec.Message) bool {
	return func(msg codec.Message) bool {
		so, ok := msg.(*SpecOrder)
		if !ok {
			return true
		}
		return preVerifySpecOrder(a, n, so)
	}
}

// preVerifySpecOrder checks a SPECORDER's leader signature and every
// embedded client signature, marking the frame on success.
func preVerifySpecOrder(a auth.Authenticator, n int, so *SpecOrder) bool {
	if so.BatchSize() > MaxBatchSize {
		return false
	}
	if so.SigVerified() {
		return true
	}
	owner := so.Owner.OwnerOf(n)
	if verifyBody(a, types.ReplicaNode(owner), so, so.Sig) != nil {
		return false
	}
	for i := 0; i < so.BatchSize(); i++ {
		req := so.ReqAt(i)
		if verifyBody(a, types.ClientNode(req.Cmd.Client), req, req.Sig) != nil {
			return false
		}
	}
	so.MarkSigVerified()
	return true
}

// preVerifyCert checks every SPECREPLY signature of a commit certificate —
// the 2f+1 serial ECDSA verifications validateCert would otherwise run on
// the process loop — marking each element, and opportunistically marks the
// certificate's embedded SPECORDER (its signature is only checked in-loop
// when the certificate has to install the instance).
func preVerifyCert(a auth.Authenticator, n int, cert []*SpecReply) bool {
	for _, sr := range cert {
		if !preVerify(a, types.ReplicaNode(sr.Replica), sr, sr.Sig, sr) {
			return false
		}
		if so := sr.SO; so != nil {
			tryMarkSpecOrder(a, n, so)
		}
	}
	return true
}

// tryMarkSpecOrder opportunistically marks a SPECORDER reached outside its
// own frame (inside a certificate): the mark asserts that the leader
// signature AND every embedded client signature verified — the exact
// meaning preVerifySpecOrder and handleSpecOrder give the flag — so all
// signatures must check out before marking. (On the in-process mesh the
// same *SpecOrder value can later arrive as an ordering frame; a weaker
// leader-only mark here would let it skip client-signature verification.)
// Never drops: an unmarkable SPECORDER is left for the loop's conditional
// checks.
func tryMarkSpecOrder(a auth.Authenticator, n int, so *SpecOrder) {
	if so.SigVerified() || so.BatchSize() > MaxBatchSize {
		return
	}
	owner := so.Owner.OwnerOf(n)
	if verifyBody(a, types.ReplicaNode(owner), so, so.Sig) != nil {
		return
	}
	for i := 0; i < so.BatchSize(); i++ {
		req := so.ReqAt(i)
		if verifyBody(a, types.ClientNode(req.Cmd.Client), req, req.Sig) != nil {
			return
		}
	}
	so.MarkSigVerified()
}

// preVerifyPOM checks both accused-owner signatures of a proof of
// misbehaviour; the semantic equivocation checks stay in-loop.
func preVerifyPOM(a auth.Authenticator, n int, m *POM) bool {
	if m.A == nil || m.B == nil {
		return true // the loop drops malformed POMs
	}
	if m.SigVerified() {
		return true
	}
	owner := m.Owner.OwnerOf(n)
	if verifyBody(a, types.ReplicaNode(owner), m.A, m.A.Sig) != nil ||
		verifyBody(a, types.ReplicaNode(owner), m.B, m.B.Sig) != nil {
		return false
	}
	m.MarkSigVerified()
	return true
}
