package core

import (
	"ezbft/internal/codec"
	"ezbft/internal/engine"
	"ezbft/internal/proc"
	"ezbft/internal/store"
	"ezbft/internal/types"
)

// This file integrates the pluggable durability layer (internal/store) into
// the ezBFT replica: what gets write-ahead-logged, when the store snapshot
// is cut, and how a restarted replica rebuilds itself from the two.
//
// # What gets logged
//
// A record is appended *before* the replica acts on each ordering-critical
// event, so a crash can lose at most the in-flight handler's work (see the
// group-commit note below):
//
//   - walOrderKind: an accepted SPECORDER — own proposal or a participant's
//     acceptance — as a HistEntry with the leader-signed proof, logged before
//     the SPECORDER is broadcast or the SPECREPLY sent;
//   - walCommitKind: an installed commit decision (final dependencies and
//     sequence number) as a HistEntry, logged when the entry reaches
//     StatusCommitted and on every later deterministic merge;
//   - walExecKind: one entry's final execution with its per-command
//     (client, timestamp) pairs — the durable increments of the per-client
//     executed-timestamp table whose full form rides in the snapshot;
//   - walCkptVoteKind: a validated CHECKPOINT vote (own or a peer's), so the
//     tracker's quorum state and the stable low-water marks survive.
//
// # Snapshot cut
//
// When a checkpoint becomes 2f+1-stable the replica persists its entire
// transferable state — the same CatchupResp payload a lagging peer would be
// served: per-space lifecycle state, the checkpoint proof, the application
// snapshot, the executed-timestamp table, and the retained log suffix. The
// store deletes every WAL segment the cut subsumes, so disk usage is
// bounded by one snapshot plus the WAL written since the last stable
// checkpoint — the durable mirror of in-memory log truncation.
//
// # Group commit
//
// Appends buffer; the sync point is the *first outbound send* after the
// appends (send/broadcastReplicas trigger the pending sync before the
// message reaches the wire), with an end-of-handler sweep (Receive/OnTimer)
// covering handlers that log without sending. Records precede the messages
// derived from them, so a handler's whole record burst still normally costs
// one fsync — but nothing a peer or client can act on ever escapes before
// the state backing it is stable. The crash window this leaves open is the
// final handler before the crash: records whose derived messages had not
// been sent yet — and only those — may be lost. Recovery tolerates that
// tail loss by design: the replica rejoins one handler behind and fetches
// the difference through the ordinary CATCHUP path (served as a tail
// transfer, not a wholesale install).
//
// # Recovery
//
// Init (which the runtimes invoke before any delivery) checks the store:
// if it holds state, the replica restores the snapshot through the same
// installer the catch-up path uses (minus signature re-verification — the
// replica wrote those bytes itself), then replays the WAL in LSN order with
// outbound messages suppressed, re-running acceptance, commit, and vote
// handling idempotently. Final execution is *re-derived*, not replayed:
// committed entries above the snapshot re-execute deterministically through
// the ordinary execution path, which also rebuilds the exactly-once memo
// and the executed-timestamp table in lockstep with the application state
// (replaying the table alone could claim executions the restored state does
// not reflect). Replayed records are not re-appended — the surviving WAL
// already covers them, and replay is idempotent, so a crash during or
// after recovery just replays again. Afterwards the replica compares its
// executed prefix against the replayed stable marks and requests a
// CATCHUP for any space still behind — receiving only the tail.
//
// # Degradation
//
// The first store error permanently disables logging (walErr): the replica
// keeps running non-durably rather than wedging consensus on a full disk,
// and the operator sees the error through ReplicaStats.WALFailed. A replica
// that restarts from such a store recovers the prefix written before the
// failure and catch-ups the rest.
const (
	walOrderKind    uint8 = 1 // accepted SPECORDER (HistEntry + proof)
	walCommitKind   uint8 = 2 // installed commit decision (HistEntry)
	walExecKind     uint8 = 3 // final execution (inst + client timestamps)
	walCkptVoteKind uint8 = 4 // validated CHECKPOINT vote (wire message)
)

// walAppend appends one framed record, buffering until the handler-end
// sync. A store error permanently degrades the replica to non-durable.
func (r *Replica) walAppend(kind uint8, data []byte) {
	if r.cfg.Store == nil || r.recovering || r.walErr != nil {
		return
	}
	if _, err := r.cfg.Store.Append(kind, data); err != nil {
		r.walErr = err
		return
	}
	r.walDirty = true
	r.stats.WALRecords++
}

// walSync is the group-commit point: one fsync per handler invocation that
// appended, called at the end of Receive and OnTimer.
func (r *Replica) walSync() {
	if r.cfg.Store == nil || !r.walDirty || r.walErr != nil {
		return
	}
	r.walDirty = false
	if err := r.cfg.Store.Sync(); err != nil {
		r.walErr = err
	}
}

// walHist logs an entry's current protocol state (acceptance or commit) as
// a HistEntry record.
func (r *Replica) walHist(kind uint8, e *entry) {
	if r.cfg.Store == nil || r.recovering || r.walErr != nil {
		return
	}
	h := HistEntry{
		Inst:  e.inst,
		Cmd:   e.cmd,
		Batch: e.extra,
		Deps:  e.deps,
		Seq:   e.seq,
		Owner: e.owner,
		SO:    e.so,
	}
	if kind == walCommitKind {
		h.Status = HistCommitted
		h.ClientCommit = e.clientCommit
	} else {
		h.Status = HistSpecOrdered
	}
	w := codec.GetWriter()
	h.marshalTo(w)
	r.walAppend(kind, w.Bytes())
	codec.PutWriter(w)
}

// walExec logs one entry's final execution: the instance and each ordered
// command's (client, timestamp) pair.
func (r *Replica) walExec(e *entry) {
	if r.cfg.Store == nil || r.recovering || r.walErr != nil {
		return
	}
	w := codec.GetWriter()
	w.Instance(e.inst)
	w.Uvarint(uint64(e.nCmds()))
	for i := 0; i < e.nCmds(); i++ {
		cmd := e.cmdAt(i)
		w.Int32(int32(cmd.Client))
		w.Uvarint(cmd.Timestamp)
	}
	r.walAppend(walExecKind, w.Bytes())
	codec.PutWriter(w)
}

// walVote logs one validated CHECKPOINT vote as its tagged wire encoding.
func (r *Replica) walVote(m *CheckpointMsg) {
	if r.cfg.Store == nil || r.recovering || r.walErr != nil {
		return
	}
	r.walAppend(walCkptVoteKind, codec.Marshal(m))
}

// persistSnapshot cuts the store snapshot at the replica's current
// transferable state — the same payload a CATCHUP-RESP carries — and lets
// the store discard the WAL prefix the cut subsumes. Called when a
// checkpoint becomes stable; suppressed during recovery (the state is
// still partial there, and the surviving WAL must not be discarded under
// it).
//
// Known cost: the cut runs synchronously inside the message handler, so on
// large application state the replica loop stalls for one serialize (+
// fsync when enabled) per checkpoint interval — visible as a periodic
// latency spike in the durability experiment. Moving the write off the
// critical path needs a completion barrier before the store may delete the
// WAL below the cut; see ROADMAP.md.
func (r *Replica) persistSnapshot() {
	if r.cfg.Store == nil || r.recovering || r.walErr != nil {
		return
	}
	snap, ok := types.Application(r.cfg.App).(types.Snapshotter)
	if !ok {
		return
	}
	resp := r.buildTransferState(snap, nil)
	if err := r.cfg.Store.SaveSnapshot(codec.Marshal(resp)); err != nil {
		r.walErr = err
		return
	}
	r.walDirty = false // the snapshot write persisted everything pending
}

// recoverFromStore rebuilds the replica from its durable state: install
// the snapshot, replay the WAL above its cut, re-derive final execution,
// and request a tail catch-up for anything still missing. Runs from Init
// with r.recovering set, which suppresses every outbound message, WAL
// re-append, and snapshot cut.
func (r *Replica) recoverFromStore(ctx proc.Context) {
	r.recovering = true
	if data, _, err := r.cfg.Store.LoadSnapshot(); err == nil && len(data) > 0 {
		if msg, err := codec.Unmarshal(data); err == nil {
			if resp, ok := msg.(*CatchupResp); ok && len(resp.Spaces) == r.n {
				if snap, ok := types.Application(r.cfg.App).(types.Snapshotter); ok {
					// Own bytes: install without re-verifying proofs, through
					// the same path a validated network transfer takes.
					r.installTransfer(ctx, resp, snap)
					// Re-seed the tracker's stable marks from the persisted
					// proof so post-restart catch-up decisions see them.
					for _, v := range resp.Proof {
						r.ckpt.Record(engine.CheckpointSpace(v.Space), v.Slot, v.Replica, v.Digest, v)
					}
				}
			}
		}
	}
	if err := r.cfg.Store.Replay(func(rec store.Record) error {
		r.replayRecord(ctx, rec)
		return nil
	}); err != nil {
		// A read error mid-replay leaves the replica only partially
		// recovered; latch it so the degradation is observable (WALFailed)
		// and no new records are appended on top of a prefix that was never
		// applied. The catch-up sweep below still closes the gap.
		r.walErr = err
	}
	// Never reuse an own-space slot the replayed log says is taken.
	if own := r.log.space(r.cfg.Self); own.maxSlot+1 > r.nextSlot {
		r.nextSlot = own.maxSlot + 1
	}
	r.tryExecute(ctx)
	r.recovering = false
	r.stats.Recoveries++
	// The durable prefix may end short of the cluster's stable frontier
	// (the last pre-crash handler's records, at most, are lost). Ask a
	// checkpoint voter for the difference; with the request's per-space
	// marks attached, the responder serves only the tail.
	for i := 0; i < r.n; i++ {
		if st := r.ckpt.Stable(engine.CheckpointSpace(i)); st != nil &&
			r.log.space(types.ReplicaID(i)).execMark < st.Mark {
			r.requestCatchup(ctx, st)
		}
	}
}

// replayRecord applies one WAL record. Replay is idempotent: records whose
// state the snapshot (or an earlier duplicate) already covers are skipped
// by the same guards the live handlers use.
func (r *Replica) replayRecord(ctx proc.Context, rec store.Record) {
	switch rec.Kind {
	case walOrderKind, walCommitKind:
		rd := codec.NewReader(rec.Data)
		h, err := decodeHistEntry(rd)
		if err != nil {
			return
		}
		r.adoptHist(ctx, &h, true)
	case walExecKind:
		rd := codec.NewReader(rec.Data)
		inst := rd.Instance()
		n := rd.Uvarint()
		if rd.Err() != nil || n > maxBatch {
			return
		}
		_ = inst // execution itself is re-derived deterministically
		for i := uint64(0); i < n; i++ {
			c := types.ClientID(rd.Int32())
			ts := rd.Uvarint()
			// Only the retransmission-window watermark is restored here;
			// executedTs must stay in lockstep with the application state,
			// which the re-derived execution rebuilds.
			if rd.Err() == nil && ts > r.highestTs[c] {
				r.highestTs[c] = ts
			}
		}
	case walCkptVoteKind:
		msg, err := codec.Unmarshal(rec.Data)
		if err != nil {
			return
		}
		cm, ok := msg.(*CheckpointMsg)
		if !ok {
			return
		}
		// Logged votes were validated before logging; re-tally without
		// re-verifying. applyStableCheckpoint's catch-up and snapshot
		// side effects are recovery-gated.
		if st := r.ckpt.Record(engine.CheckpointSpace(cm.Space), cm.Slot, cm.Replica, cm.Digest, cm); st != nil {
			r.applyStableCheckpoint(ctx, st)
		}
	}
}

// adoptHist installs or merges one transferred/replayed entry without
// disturbing state that already supersedes it. It is shared by WAL replay
// (replaying = true: also rebuild the speculative results and reply cache,
// with sends suppressed) and the tail catch-up install (replaying = false:
// never trust a conflicting batch over the local one).
func (r *Replica) adoptHist(ctx proc.Context, h *HistEntry, replaying bool) {
	if h.Inst.Space < 0 || int(h.Inst.Space) >= r.n {
		return
	}
	sp := r.log.space(h.Inst.Space)
	if h.Inst.Slot <= sp.truncated {
		return // the installed snapshot already covers it
	}
	e := r.log.get(h.Inst)
	if e == nil {
		e = entryFromHist(h)
		if h.Status != HistSpecOrdered {
			// Transferred commit decisions are final; executed entries are
			// adopted as committed so this replica executes them itself.
			e.status = StatusCommitted
			e.clientCommit = h.ClientCommit
		}
		r.log.put(e)
		for i := 0; i < e.nCmds(); i++ {
			cmd := e.cmdAt(i)
			if cmd.IsNoop() {
				continue
			}
			r.instByCmd[cmdKey{cmd.Client, cmd.Timestamp}] = e.inst
			r.deps.update(e.inst, cmd, e.seq)
			if cmd.Timestamp > r.highestTs[cmd.Client] {
				r.highestTs[cmd.Client] = cmd.Timestamp
			}
		}
		if replaying && e.so != nil {
			// Rebuild the speculative overlay and the per-request reply
			// cache exactly as the original acceptance did; r.send is
			// suppressed while recovering, so nothing leaves the replica.
			r.specExecuteAndReply(ctx, e, e.so)
		}
		if e.status == StatusCommitted {
			r.pendingExec[e.inst] = e
		}
		return
	}
	if !replaying && e.cmdDigest != histBatchDigest(h) {
		// A tail transfer disagreeing with the local log about an
		// instance's content is conflicting evidence (an equivocating
		// leader's, or a lying responder's); the owner-change protocol
		// arbitrates such slots, never a state transfer.
		return
	}
	if h.Status == HistSpecOrdered || e.status >= StatusExecuted {
		return
	}
	// Commit decision for a known entry: install or deterministically merge
	// (union of dependencies, maximum sequence number), mirroring
	// commitEntry.
	if e.status == StatusCommitted {
		e.deps.Union(h.Deps)
		if h.Seq > e.seq {
			e.seq = h.Seq
		}
	} else {
		e.deps = h.Deps.Clone()
		e.seq = h.Seq
		e.status = StatusCommitted
		if e.clientCommit == nil {
			e.clientCommit = h.ClientCommit
		}
	}
	for i := 0; i < e.nCmds(); i++ {
		r.deps.update(e.inst, e.cmdAt(i), e.seq)
	}
	r.pendingExec[e.inst] = e
}

// entryFromHist builds a log entry from a transferred HistEntry (digests
// recomputed from the carried commands).
func entryFromHist(h *HistEntry) *entry {
	e := &entry{
		inst:  h.Inst,
		owner: h.Owner,
		cmd:   h.Cmd,
		deps:  h.Deps.Clone(),
		seq:   h.Seq,
		so:    h.SO,
	}
	switch h.Status {
	case HistExecuted:
		e.status = StatusExecuted
	case HistCommitted:
		e.status = StatusCommitted
		e.clientCommit = h.ClientCommit
	default:
		e.status = StatusSpecOrdered
	}
	if len(h.Batch) > 0 {
		e.extra = h.Batch
		digests := make([]types.Digest, h.BatchSize())
		for j := range digests {
			digests[j] = h.CmdAt(j).Digest()
		}
		e.cmdDigests = digests
		e.cmdDigest = BatchDigest(digests)
	} else {
		e.cmdDigest = h.Cmd.Digest()
	}
	return e
}

// histBatchDigest recomputes the batch digest binding a HistEntry's
// commands.
func histBatchDigest(h *HistEntry) types.Digest {
	if len(h.Batch) == 0 {
		return h.Cmd.Digest()
	}
	digests := make([]types.Digest, h.BatchSize())
	for j := range digests {
		digests[j] = h.CmdAt(j).Digest()
	}
	return BatchDigest(digests)
}
