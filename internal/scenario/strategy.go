package scenario

import (
	"time"

	"ezbft/internal/auth"
	"ezbft/internal/codec"
	"ezbft/internal/core"
	"ezbft/internal/engine"
	"ezbft/internal/fab"
	"ezbft/internal/pbft"
	"ezbft/internal/proc"
	"ezbft/internal/types"
	"ezbft/internal/zyzzyva"
)

// Env gives a strategy the facts it needs about the compromised replica.
type Env struct {
	// Self is the compromised replica.
	Self types.ReplicaID
	// N is the cluster size.
	N int
	// Auth is the replica's own authenticator: strategies re-sign the
	// messages they forge (a Byzantine replica controls its own key, and
	// nothing else).
	Auth auth.Authenticator
	// Protocol names the protocol under attack.
	Protocol engine.Protocol
}

// peers returns every other replica's node id in ascending order.
func (e Env) peers() []types.NodeID {
	out := make([]types.NodeID, 0, e.N-1)
	for i := 0; i < e.N; i++ {
		if types.ReplicaID(i) != e.Self {
			out = append(out, types.ReplicaNode(types.ReplicaID(i)))
		}
	}
	return out
}

// Strategy is a named Byzantine strategy: a constructor producing the
// engine.Behavior that drives one compromised replica.
type Strategy struct {
	Name string
	New  func(env Env) engine.Behavior
}

// Strategies returns the encoded attack catalogue (see the package doc).
func Strategies() []Strategy {
	return []Strategy{
		{Name: "equivocating-owner", New: newEquivocatingOwner},
		{Name: "stale-order-replay", New: newStaleReplay},
		{Name: "checkpoint-liar", New: newCheckpointLiar},
		{Name: "commit-flood", New: newCommitFlooder},
		{Name: "silent-owner", New: func(Env) engine.Behavior { return silentOwner{} }},
		{Name: "slow-owner", New: func(Env) engine.Behavior { return slowOwner{extra: 5 * time.Millisecond} }},
		{Name: "lying-catchup", New: newLyingCatchup},
		{Name: "lying-snapshot-responder", New: newLyingSnapshotResponder},
	}
}

// StrategyByName resolves a catalogue entry (nil when unknown).
func StrategyByName(name string) *Strategy {
	for _, s := range Strategies() {
		if s.Name == name {
			s := s
			return &s
		}
	}
	return nil
}

// isOrdering reports whether msg is a protocol's ordering frame — the
// message an owner/primary uses to assign a request its slot.
func isOrdering(msg codec.Message) bool {
	switch msg.(type) {
	case *core.SpecOrder, *pbft.PrePrepare, *zyzzyva.OrderReq, *fab.Propose:
		return true
	}
	return false
}

// passthrough supplies the no-op half of one-sided behaviors.
type passthrough struct{}

func (passthrough) Outbound(proc.Context, types.NodeID, codec.Message) bool { return true }
func (passthrough) Inbound(proc.Context, types.NodeID, codec.Message) bool  { return true }

// --- equivocating owner -------------------------------------------------

// equivocatingOwner double-signs conflicting slot assignments — the safety
// attack of the "Revisiting EZBFT" note.
//
// Against ezBFT it shadow-orders: the first SPECORDER in its own space
// goes out normally to everyone, and half the peers additionally receive a
// re-signed copy assigning the same batch the next slot too. Both
// assignments are contiguous, so the duped replicas speculatively execute
// the batch twice and reply for both instances. The client now holds two
// SPECORDERs by the same owner ordering the same request at different
// instances — the exact conflict its POM check must convict on
// (broadcasting the proof and freezing the owner's spaces), and the
// duplicate speculative execution must never survive to final state.
//
// Against the primary-based baselines it skews: half the peers see every
// ordering message re-signed one sequence number higher, so neither half
// can assemble a quorum and the view change must depose the primary.
type equivocatingOwner struct {
	passthrough
	env      Env
	halfB    map[types.NodeID]bool
	shadowed bool
}

func newEquivocatingOwner(env Env) engine.Behavior {
	peers := env.peers()
	b := &equivocatingOwner{env: env, halfB: make(map[types.NodeID]bool, len(peers))}
	for _, p := range peers[len(peers)/2:] {
		b.halfB[p] = true
	}
	return b
}

func (b *equivocatingOwner) Outbound(ctx proc.Context, to types.NodeID, msg codec.Message) bool {
	if !b.halfB[to] {
		return true
	}
	switch m := msg.(type) {
	case *core.SpecOrder:
		if m.Inst.Space != b.env.Self || b.shadowed {
			return true
		}
		b.shadowed = true
		cp := *m
		cp.Inst.Slot = m.Inst.Slot + 1
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return true // the genuine order still goes out — plus the shadow
	case *pbft.PrePrepare:
		cp := *m
		cp.Seq = m.Seq + 1
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *zyzzyva.OrderReq:
		cp := *m
		cp.Seq = m.Seq + 1
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *fab.Propose:
		cp := *m
		cp.Seq = m.Seq + 1
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	}
	return true
}

// --- stale ordering replay ----------------------------------------------

// staleReplay records this replica's ordering messages and, every few
// sends, replays an old one verbatim alongside the fresh traffic. The
// signatures are genuine (they were once valid), so recipients must
// reject the replay by slot/digest dedup, not by authentication.
type staleReplay struct {
	passthrough
	history []codec.Message
	count   int
}

func newStaleReplay(Env) engine.Behavior { return &staleReplay{} }

func (b *staleReplay) Outbound(ctx proc.Context, to types.NodeID, msg codec.Message) bool {
	if !isOrdering(msg) {
		return true
	}
	b.count++
	if len(b.history) > 0 && b.count%3 == 0 {
		ctx.Send(to, b.history[(b.count*7)%len(b.history)])
	}
	if len(b.history) < 16 {
		b.history = append(b.history, msg)
	} else {
		b.history[b.count%16] = msg
	}
	return true
}

// --- checkpoint-vote lying ----------------------------------------------

// checkpointLiar corrupts the state digest in every checkpoint vote this
// replica emits (re-signed, so the signature verifies). Correct replicas
// must still stabilize checkpoints from the 2f+1 honest voters, and the
// liar's votes must never contribute to a stable proof.
type checkpointLiar struct {
	passthrough
	env Env
}

func newCheckpointLiar(env Env) engine.Behavior { return &checkpointLiar{env: env} }

func (b *checkpointLiar) Outbound(ctx proc.Context, to types.NodeID, msg codec.Message) bool {
	switch m := msg.(type) {
	case *core.CheckpointMsg:
		cp := *m
		cp.Digest[0] ^= 0xff
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *pbft.Checkpoint:
		cp := *m
		cp.Digest[0] ^= 0xff
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *zyzzyva.Checkpoint:
		cp := *m
		cp.Digest[0] ^= 0xff
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *fab.Checkpoint:
		cp := *m
		cp.Digest[0] ^= 0xff
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	}
	return true
}

// --- commit flooding ----------------------------------------------------

// commitFlooder stashes the commit-class messages delivered to this
// replica and re-broadcasts one (rotating, original signature) to every
// peer on each delivery — a message-amplification replay attack. Correct
// replicas must absorb the flood through commit idempotency and the
// bounded deferred-commit parking, without state divergence or unbounded
// memory.
type commitFlooder struct {
	env   Env
	stash []codec.Message
	i     int
}

func newCommitFlooder(env Env) engine.Behavior { return &commitFlooder{env: env} }

func (b *commitFlooder) Outbound(proc.Context, types.NodeID, codec.Message) bool { return true }

func (b *commitFlooder) Inbound(ctx proc.Context, from types.NodeID, msg codec.Message) bool {
	switch msg.(type) {
	case *core.Commit, *core.CommitFast, *pbft.Prepare, *pbft.Commit, *zyzzyva.CommitCert, *fab.Accept:
		if len(b.stash) < 16 {
			b.stash = append(b.stash, msg)
		} else {
			b.stash[b.i%16] = msg
		}
	}
	if len(b.stash) > 0 {
		b.i++
		replay := b.stash[b.i%len(b.stash)]
		for _, p := range b.env.peers() {
			ctx.Send(p, replay)
		}
	}
	return true
}

// --- silent / slow owner ------------------------------------------------

// silentOwner suppresses every ordering message while behaving normally
// otherwise — a fail-silent owner that still votes. ezBFT clients must
// route around it via retry + owner rotation; the baselines must depose
// it by view change.
type silentOwner struct{ passthrough }

func (silentOwner) Outbound(_ proc.Context, _ types.NodeID, msg codec.Message) bool {
	return !isOrdering(msg)
}

// slowOwner charges extra processing time for every ordering message it
// emits, degrading latency without breaking any protocol rule.
type slowOwner struct {
	passthrough
	extra time.Duration
}

func (b slowOwner) Outbound(ctx proc.Context, _ types.NodeID, msg codec.Message) bool {
	if isOrdering(msg) {
		ctx.Charge(b.extra)
	}
	return true
}

// --- lying catch-up responder -------------------------------------------

// lyingCatchup answers state-transfer requests with garbage snapshot
// bytes under a valid signature and a valid checkpoint proof. The
// requester must reject the transfer (parse failure on ezBFT, the
// quorum-digest check on PBFT) and recover via another voter instead of
// installing corrupted state.
type lyingCatchup struct {
	passthrough
	env Env
}

func newLyingCatchup(env Env) engine.Behavior { return &lyingCatchup{env: env} }

func (b *lyingCatchup) Outbound(ctx proc.Context, to types.NodeID, msg codec.Message) bool {
	switch m := msg.(type) {
	case *core.CatchupResp:
		cp := *m
		cp.Snapshot = []byte("lies")
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *pbft.CatchupResp:
		cp := *m
		cp.Snapshot = []byte("lies")
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	}
	return true
}

// --- lying snapshot responder -------------------------------------------

// lyingSnapshotResponder is the stealthy upgrade of lyingCatchup: instead
// of garbage it serves the requester the real catch-up response with one
// flipped snapshot byte, wrapped in the genuine stable-checkpoint proof,
// consistent marks, an untouched suffix, and a fresh valid signature.
// Every per-message check passes — the proof chain is real; only the
// state bytes the proof does not pin are forged. ezBFT and PBFT must
// convict the forgery through f+1 cross-validation: it disagrees with
// every honest responder, so it is excluded from the installing group and
// counted in CatchupMismatches. Zyzzyva and FaB, whose snapshots are
// digest-pinned per response, must reject it at install time and recover
// through responder rotation.
type lyingSnapshotResponder struct {
	passthrough
	env Env
}

func newLyingSnapshotResponder(env Env) engine.Behavior {
	return &lyingSnapshotResponder{env: env}
}

// flipSnapshot returns a copy of the snapshot with its first byte
// inverted (or a spurious byte when the snapshot is empty) — the smallest
// forgery that still parses as plausible state.
func flipSnapshot(s []byte) []byte {
	if len(s) == 0 {
		return []byte{1}
	}
	cp := append([]byte(nil), s...)
	cp[0] ^= 0xff
	return cp
}

func (b *lyingSnapshotResponder) Outbound(ctx proc.Context, to types.NodeID, msg codec.Message) bool {
	switch m := msg.(type) {
	case *core.CatchupResp:
		if m.Tail {
			// Tail responses carry per-entry evidence, not snapshots —
			// forging them is lyingCatchup's job. The wholesale response
			// is where the unpinned bytes live.
			return true
		}
		cp := *m
		cp.Snapshot = flipSnapshot(m.Snapshot)
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *pbft.CatchupResp:
		cp := *m
		cp.Snapshot = flipSnapshot(m.Snapshot)
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *zyzzyva.CatchupResp:
		cp := *m
		cp.Snapshot = flipSnapshot(m.Snapshot)
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	case *fab.CatchupResp:
		cp := *m
		cp.Snapshot = flipSnapshot(m.Snapshot)
		cp.Sig = b.env.Auth.Sign(cp.SignedBody())
		ctx.Send(to, &cp)
		return false
	}
	return true
}
