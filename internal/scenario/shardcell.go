package scenario

import (
	"fmt"
	"time"

	"ezbft/internal/bench"
	"ezbft/internal/engine"
	"ezbft/internal/kvstore"
	"ezbft/internal/proc"
	"ezbft/internal/shard"
	"ezbft/internal/types"
	"ezbft/internal/wan"
	"ezbft/internal/workload"
)

// ShardCell is one sharded-deployment scenario: Shards independent
// consensus groups behind the consistent-hash router, with a network shape
// applied inside one group only (the victim shard). The other shards — and
// the cross-shard commit protocol spanning all of them — keep running
// through the fault, and the victim shard is carved out of the convergence
// demand until the shape heals: afterwards every shard must converge, the
// shape's isolated replica catching up by state transfer.
type ShardCell struct {
	Protocol engine.Protocol
	// Shards is the number of consensus groups (minimum 2 — a sharded cell
	// exists to fault one group while others run clean).
	Shards int
	// Shape interferes with VictimShard's group only.
	Shape       *Shape
	VictimShard int
	Batching    bool
	// Checkpointing must be on for shapes that fully isolate replicas
	// (Victims != nil): the victim shard's cut-off replica can only rejoin
	// its group through checkpoint-anchored state transfer.
	Checkpointing bool
}

// Name renders the cell's replayable identity.
func (c ShardCell) Name() string {
	shape := "clean"
	if c.Shape != nil {
		shape = fmt.Sprintf("%s@s%d", c.Shape.Name, c.VictimShard)
	}
	variant := "plain"
	switch {
	case c.Batching && c.Checkpointing:
		variant = "batch+ckpt"
	case c.Batching:
		variant = "batch"
	case c.Checkpointing:
		variant = "ckpt"
	}
	return fmt.Sprintf("%s/shards%d/%s/%s", c.Protocol, c.Shards, shape, variant)
}

// ShardResult is one sharded cell run's outcome.
type ShardResult struct {
	Cell       ShardCell
	Seed       int64
	Pass       bool
	Violations []string
	Completed  int
	Expected   int
	// TxnsCommitted and TxnsAborted partition the injected cross-shard
	// transactions by outcome; every transaction must land in one of them.
	TxnsCommitted int
	TxnsAborted   int
	// VictimCatchups counts state transfers installed inside the victim
	// shard's group — the proof that the shape genuinely carved replicas
	// out and recovery went through catch-up, not luck.
	VictimCatchups uint64
	VirtualTime    time.Duration
}

// String renders the replay line a failing test prints.
func (r *ShardResult) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
		for _, v := range r.Violations {
			status += "; " + v
		}
	}
	return fmt.Sprintf("shard cell %s seed %d: %s", r.Cell.Name(), r.Seed, status)
}

// keyOnShard deterministically probes base, base#0, base#1, ... for the
// first key the router places on shard s; every participant that probes the
// same base finds the same key.
func keyOnShard(r *shard.Router, s int, base string) string {
	if r.ShardOf(base) == s {
		return base
	}
	for i := 0; ; i++ {
		k := fmt.Sprintf("%s#%d", base, i)
		if r.ShardOf(k) == s {
			return k
		}
	}
}

// shardHotGen is hotIncrGen restricted to one shard: INCRs hit the shard's
// probe of HotKey and private puts are suffix-probed onto the shard, so
// every command genuinely belongs to the group that orders it.
type shardHotGen struct {
	contention float64
	router     *shard.Router
	shard      int
	hotKey     string
}

func (g shardHotGen) Next(ctx proc.Context, client types.ClientID, seq uint64) types.Command {
	if ctx.Rand().Float64() < g.contention {
		return types.Command{Op: types.OpIncr, Key: g.hotKey}
	}
	base := fmt.Sprintf("c%03d:%04d", uint32(client)%1000, seq%10000)
	return types.Command{
		Op:    types.OpPut,
		Key:   keyOnShard(g.router, g.shard, base),
		Value: []byte(fmt.Sprintf("v%d", seq)),
	}
}

// RunShard executes one sharded cell under cfg's fixed seed: per-shard
// closed-loop workloads, cross-shard transactions injected both during the
// fault window and after the heal, and the full invariant sweep — liveness,
// per-shard exactly-once counters, transaction atomicity, lock hygiene, and
// per-shard digest convergence.
func RunShard(cell ShardCell, cfg Config) (*ShardResult, error) {
	cfg = cfg.withDefaults()
	if cell.Shards < 2 {
		cell.Shards = 2
	}
	if cell.VictimShard < 0 || cell.VictimShard >= cell.Shards {
		return nil, fmt.Errorf("shard scenario %s: victim shard %d out of range", cell.Name(), cell.VictimShard)
	}
	topo := wan.DeploymentA()
	regions := topo.Regions()
	n := len(regions)

	spec := bench.Spec{
		Protocol:       cell.Protocol,
		Topology:       topo,
		ReplicaRegions: regions,
		Primary:        0,
		Seed:           cfg.Seed,
	}
	if cell.Batching {
		spec.BatchSize = 4
	}
	if cell.Checkpointing {
		spec.CheckpointInterval = 8
	}

	router := shard.NewRouter(cell.Shards)
	recs := make([]*recorder, cell.Shards)
	for s := range recs {
		recs[s] = &recorder{}
	}
	drivers := make([][]*workload.ClosedLoop, cell.Shards)
	for s := range drivers {
		drivers[s] = make([]*workload.ClosedLoop, cfg.Clients)
	}
	// A generous virtual phase timeout: under a flapping shard the feeder
	// client's queue backs up behind slow-path commands, and a phase must
	// not be declared failed just because it sat in that queue. Aborting on
	// genuinely lost phases is the transaction deadline's job.
	ss := bench.ShardSpec{Base: spec, Shards: cell.Shards, PhaseTimeout: 10 * time.Second}
	for i := 0; i < cfg.Clients; i++ {
		i := i
		ss.Clients = append(ss.Clients, bench.ShardClientGroup{
			Region: regions[i%len(regions)],
			Count:  1,
			NewDriver: func(shardIdx, _ int) workload.Driver {
				d := &workload.ClosedLoop{
					Gen: shardHotGen{
						contention: cfg.Contention,
						router:     router,
						shard:      shardIdx,
						hotKey:     keyOnShard(router, shardIdx, HotKey),
					},
					Recorder:    recs[shardIdx],
					MaxRequests: cfg.Requests,
				}
				drivers[shardIdx][i] = d
				return &LateJoin{Inner: d, Delay: time.Duration(i) * cfg.JoinStagger}
			},
		})
	}

	cl, err := bench.BuildSharded(ss)
	if err != nil {
		return nil, fmt.Errorf("shard scenario %s: %w", cell.Name(), err)
	}
	victim := cl.Groups[cell.VictimShard]
	if cell.Shape != nil {
		env := ShapeEnv{N: n, HealAt: cfg.HealAt, Now: victim.RT.Now, Rand: victim.RT.Kernel().Rand()}
		victim.RT.SetFilter(Compose(cell.Shape.New(env)))
	}

	res := &ShardResult{Cell: cell, Seed: cfg.Seed, Expected: cell.Shards * cfg.Clients * int(cfg.Requests)}

	// Cross-shard transactions on dedicated counter keys, one per shard:
	// every committed transaction increments each key exactly once, so the
	// final counters must equal the commit count on every replica.
	ops := make([]shard.Op, cell.Shards)
	txnKeys := make([]string, cell.Shards)
	for s := range ops {
		txnKeys[s] = keyOnShard(router, s, "xshard:ctr")
		ops[s] = shard.Op{Op: types.OpIncr, Key: txnKeys[s]}
	}
	// Half the transactions run against the fault window — two-phase commit
	// across a degraded shard, submitted concurrently so they also contend
	// for the same locks, free to commit or cleanly abort. The other half
	// run sequentially over the healed network, where aborting would be a
	// failure (they conflict with nothing: each completes before the next
	// starts, and the workload never touches the transaction keys).
	const txnsPerWindow = 3
	var txns []*bench.Txn
	for j := 0; j < txnsPerWindow; j++ {
		t, err := cl.SubmitTxn(ops, 2*cfg.HealAt)
		if err != nil {
			return nil, fmt.Errorf("shard scenario %s: %w", cell.Name(), err)
		}
		txns = append(txns, t)
	}
	cl.Run(cfg.HealAt)
	// Drain the fault window's transaction backlog before the post-heal
	// batch, so its commit-or-fail verdict isn't muddied by lock conflicts
	// with stragglers.
	cl.RunUntil(func() bool { return cl.ActiveTxns() == 0 }, cfg.Deadline)
	var postHeal []*bench.Txn
	for j := 0; j < txnsPerWindow; j++ {
		t, err := cl.SubmitTxn(ops, cfg.Deadline-cl.Now())
		if err != nil {
			return nil, fmt.Errorf("shard scenario %s: %w", cell.Name(), err)
		}
		txns = append(txns, t)
		postHeal = append(postHeal, t)
		cl.RunUntil(t.Done, cfg.Deadline)
	}

	// Filler tail: push enough post-heal commands through every shard to
	// carry the next checkpoint past any instance a partition victim
	// missed — catch-up only triggers once a stable checkpoint forms above
	// the victim's gap, and the workload alone may stop just short of a
	// checkpoint boundary. One-phase single-shard transactions keep the
	// filler on the same feeder path as everything else.
	if cell.Checkpointing {
		for j := uint64(0); j < 2*spec.CheckpointInterval; j++ {
			for s := 0; s < cell.Shards; s++ {
				fill, err := cl.SubmitTxn([]shard.Op{{
					Op:    types.OpPut,
					Key:   keyOnShard(router, s, fmt.Sprintf("filler:%d", j)),
					Value: []byte("x"),
				}}, time.Minute)
				if err != nil {
					return nil, fmt.Errorf("shard scenario %s: filler: %w", cell.Name(), err)
				}
				cl.RunUntil(fill.Done, cfg.Deadline)
			}
		}
	}

	allDone := func() bool {
		for _, sd := range drivers {
			for _, d := range sd {
				if d.Done() < cfg.Requests {
					return false
				}
			}
		}
		return cl.ActiveTxns() == 0
	}
	live := cl.RunUntil(allDone, cfg.Deadline)
	cl.Run(cl.Now() + cfg.Settle)

	// Count outcomes; every transaction must have resolved, and the
	// post-heal batch must have committed.
	for i, t := range txns {
		switch {
		case !t.Done():
			res.Violations = append(res.Violations, fmt.Sprintf("txn %d unresolved", i))
		case t.Outcome() == nil:
			res.TxnsCommitted++
		default:
			res.TxnsAborted++
		}
	}
	for i, t := range postHeal {
		if t.Done() && t.Outcome() != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("post-heal txn %d aborted on a clean network: %v", txnsPerWindow+i, t.Outcome()))
		}
	}

	// The victim shard is carved out of the convergence demand until its
	// shape heals; the run only checks afterwards, when every replica of
	// every shard must agree — the shape's fully isolated replicas closing
	// the gap by state transfer (hence the checkpointing requirement).
	converged := func() bool {
		for s := range cl.Apps {
			ref := cl.Apps[s][0].Digest()
			for _, app := range cl.Apps[s][1:] {
				if app.Digest() != ref {
					return false
				}
			}
		}
		return true
	}
	if !cl.RunUntil(converged, cl.Now()+cfg.ConvergeWait) {
		for s := range cl.Apps {
			line := fmt.Sprintf("shard %d digests:", s)
			for i, app := range cl.Apps[s] {
				line += fmt.Sprintf(" r%d=%s", i, app.Digest().String()[:8])
			}
			res.Violations = append(res.Violations, line)
		}
	}
	if !live && !allDone() {
		for s, sd := range drivers {
			for i, d := range sd {
				if d.Done() < cfg.Requests {
					res.Violations = append(res.Violations,
						fmt.Sprintf("liveness: shard %d client %d completed %d/%d", s, i, d.Done(), cfg.Requests))
				}
			}
		}
		if a := cl.ActiveTxns(); a > 0 {
			res.Violations = append(res.Violations, fmt.Sprintf("liveness: %d transactions still active", a))
		}
	}

	// Exactly-once, per shard and per replica: the shard's hot counter must
	// equal its completed INCRs, the cross-shard counter must equal the
	// commit count, and no replica may hold a lock once the run drains.
	counter := func(app *shard.App, key string) uint64 {
		store, ok := app.Inner().(*kvstore.Store)
		if !ok {
			return 0
		}
		v, ok := store.Get(key)
		if !ok {
			return 0
		}
		return kvstore.Counter(v)
	}
	for s := range cl.Apps {
		hotKey := keyOnShard(router, s, HotKey)
		for i, app := range cl.Apps[s] {
			if got := counter(app, hotKey); got != uint64(recs[s].incrs) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("shard %d replica %d: hot counter %d != %d completed INCRs", s, i, got, recs[s].incrs))
			}
			if got := counter(app, txnKeys[s]); got != uint64(res.TxnsCommitted) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("shard %d replica %d: txn counter %d != %d committed transactions", s, i, got, res.TxnsCommitted))
			}
			if locked := app.LockedKeys(); len(locked) != 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("shard %d replica %d: stale locks %v", s, i, locked))
			}
		}
		res.Completed += recs[s].count
	}

	// The carve-out must be real: when the shape fully isolates replicas,
	// the victim group must show installed state transfers (the isolated
	// replica had a gap only catch-up could close). A zero here means the
	// fault never bit and the cell proves nothing.
	if cell.Shape != nil && cell.Shape.Victims != nil {
		switch {
		case len(victim.EZReplicas) == n:
			for _, rep := range victim.EZReplicas {
				res.VictimCatchups += rep.Stats().CatchupsInstalled
			}
		case len(victim.PBReplicas) == n:
			for _, rep := range victim.PBReplicas {
				res.VictimCatchups += rep.Stats().CatchupsInstalled
			}
		case len(victim.ZYReplicas) == n:
			for _, rep := range victim.ZYReplicas {
				res.VictimCatchups += rep.Stats().CatchupsInstalled
			}
		case len(victim.FBReplicas) == n:
			for _, rep := range victim.FBReplicas {
				res.VictimCatchups += rep.Stats().CatchupsInstalled
			}
		}
		if res.VictimCatchups == 0 {
			res.Violations = append(res.Violations, "victim shard installed no state transfers: the shape never carved anyone out")
		}
	}

	res.VirtualTime = cl.Now()
	res.Pass = len(res.Violations) == 0
	return res, nil
}

// ShardSmokeCells is the sharded slice of the CI gate: two 2-shard cells
// with a flapping partition inside one shard's group — once against the
// coordinator-side shard (shard 0, lowest touched, which coordinates every
// cross-shard transaction here) and once against a participant shard —
// verified to pass deterministically.
func ShardSmokeCells() []ShardCell {
	return []ShardCell{
		{Protocol: engine.EZBFT, Shards: 2, Shape: ShapeByName("flapping-partition"), VictimShard: 0, Batching: true, Checkpointing: true},
		{Protocol: engine.PBFT, Shards: 2, Shape: ShapeByName("flapping-partition"), VictimShard: 1, Batching: true, Checkpointing: true},
	}
}
