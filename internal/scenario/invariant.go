package scenario

import (
	"fmt"
	"sync"

	"ezbft/internal/kvstore"
	"ezbft/internal/types"
)

type execKey struct {
	client types.ClientID
	ts     uint64
}

// Journal wraps the reference key-value store and records every final
// execution, so the harness can check exactly-once per (client,
// timestamp) on each replica independently of the end-to-end counter
// check. Speculative executions are not journaled — they may legitimately
// roll back; only Apply (baselines) and PromoteFinal (ezBFT) count.
type Journal struct {
	store *kvstore.Store
	// mu guards the journaling state: under the parallel executor
	// (Cell.ExecWorkers > 1) PromoteFinal is called concurrently for
	// non-interfering commands, and the journal must observe every one.
	// The inner store synchronizes itself (striped locks).
	mu   sync.Mutex
	seen map[execKey]int
	// Duplicates lists the first few (client, ts) pairs finally executed
	// more than once since the last state-transfer install.
	Duplicates []string
	// Restores counts state-transfer installs. An install replaces the
	// store wholesale, so the seen-set resets with it: entries replayed
	// above the snapshot are new executions on this state, and true
	// cross-install duplicates surface through the counter invariant.
	Restores int
	// Finals counts journaled final executions.
	Finals uint64
}

var (
	_ types.Application            = (*Journal)(nil)
	_ types.SpeculativeApplication = (*Journal)(nil)
	_ types.ConcurrentApplication  = (*Journal)(nil)
	_ types.Snapshotter            = (*Journal)(nil)
)

// NewJournal builds a journaling application over a fresh store.
func NewJournal() *Journal {
	return &Journal{store: kvstore.New(), seen: make(map[execKey]int)}
}

func (j *Journal) record(cmd types.Command) {
	if cmd.IsNoop() {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.Finals++
	k := execKey{client: cmd.Client, ts: cmd.Timestamp}
	j.seen[k]++
	if j.seen[k] == 2 && len(j.Duplicates) < 8 {
		j.Duplicates = append(j.Duplicates, fmt.Sprintf("client %d ts %d executed twice", k.client, k.ts))
	}
}

// Apply implements types.Application.
func (j *Journal) Apply(cmd types.Command) types.Result {
	j.record(cmd)
	return j.store.Apply(cmd)
}

// Digest implements types.Application.
func (j *Journal) Digest() types.Digest { return j.store.Digest() }

// SpecExecute implements types.SpeculativeApplication.
func (j *Journal) SpecExecute(cmd types.Command) types.Result { return j.store.SpecExecute(cmd) }

// Rollback implements types.SpeculativeApplication.
func (j *Journal) Rollback() { j.store.Rollback() }

// PromoteFinal implements types.SpeculativeApplication.
func (j *Journal) PromoteFinal(cmd types.Command) types.Result {
	j.record(cmd)
	return j.store.PromoteFinal(cmd)
}

// Footprint implements types.ConcurrentApplication, delegating to the
// store: journaling adds no keys of its own (the seen-set is keyed by
// client request identity, synchronized by mu).
func (j *Journal) Footprint(cmd types.Command) []types.Key { return j.store.Footprint(cmd) }

// Snapshot implements types.Snapshotter.
func (j *Journal) Snapshot() []byte { return j.store.Snapshot() }

// Restore implements types.Snapshotter.
func (j *Journal) Restore(snap []byte) error {
	if err := j.store.Restore(snap); err != nil {
		return err
	}
	j.Restores++
	j.seen = make(map[execKey]int)
	return nil
}

// Counter reads the hot INCR counter from the final state.
func (j *Journal) Counter(key string) uint64 {
	v, ok := j.store.Get(key)
	if !ok {
		return 0
	}
	return kvstore.Counter(v)
}
