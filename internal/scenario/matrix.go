package scenario

import (
	"fmt"
	"strings"
	"time"

	"ezbft/internal/auth"
	"ezbft/internal/bench"
	"ezbft/internal/core"
	"ezbft/internal/engine"
	"ezbft/internal/proc"
	"ezbft/internal/store"
	"ezbft/internal/types"
	"ezbft/internal/wan"
	"ezbft/internal/workload"
)

// HotKey is the contended counter key the exactly-once invariant reads.
const HotKey = "hot:ctr"

// Cell is one scenario-matrix configuration: a protocol under one
// Byzantine strategy (nil = all replicas honest) and one network shape
// (nil = clean network), with batching and checkpointing toggled.
type Cell struct {
	Protocol      engine.Protocol
	Strategy      *Strategy
	Shape         *Shape
	Batching      bool
	Checkpointing bool
	// ExecWorkers > 1 runs the cell with the deterministic parallel
	// executor (ezBFT only; other protocols ignore it). Every invariant —
	// exactly-once, digest convergence, certificate agreement — must hold
	// identically, since parallel execution is byte-identical to serial.
	ExecWorkers int
	// Restart enables the crash-restart fault: replicas run over a durable
	// store (memory backend), one replica is hard-killed mid-workload,
	// stays down for Config.Downtime, and is rebuilt from its store with a
	// fresh application. Every invariant must still hold, and for ezBFT
	// the restarted replica must recover its executed prefix locally —
	// wholesale state transfers after the restart are a violation.
	Restart bool
	// XFail documents a known deficiency: the cell is expected to fail
	// invariant checking for the stated reason. An expected failure does
	// not fail the matrix (it renders as "xfail"), but an unexpected PASS
	// renders as "XPASS" so a fixed deficiency gets noticed and promoted.
	XFail string
}

// Name renders the cell's replayable identity.
func (c Cell) Name() string {
	strat, shape := "honest", "clean"
	if c.Strategy != nil {
		strat = c.Strategy.Name
	}
	if c.Shape != nil {
		shape = c.Shape.Name
	}
	variant := "plain"
	switch {
	case c.Batching && c.Checkpointing:
		variant = "batch+ckpt"
	case c.Batching:
		variant = "batch"
	case c.Checkpointing:
		variant = "ckpt"
	}
	if c.ExecWorkers > 1 {
		variant += fmt.Sprintf("+par%d", c.ExecWorkers)
	}
	if c.Restart {
		variant += "+restart"
	}
	return fmt.Sprintf("%s/%s/%s/%s", c.Protocol, strat, shape, variant)
}

// Config tunes one cell run. Zero values select the defaults.
type Config struct {
	// Seed drives the whole simulation; a failure replays from it.
	Seed int64
	// Clients is the number of closed-loop clients (round-robin across
	// the topology's regions).
	Clients int
	// Requests per client.
	Requests uint64
	// Contention is the fraction of requests doing INCR on HotKey; the
	// rest put private keys.
	Contention float64
	// JoinStagger delays client i's start by i*JoinStagger (join churn).
	JoinStagger time.Duration
	// HealAt is when network shapes stop interfering.
	HealAt time.Duration
	// Deadline bounds the liveness wait (virtual time).
	Deadline time.Duration
	// Settle drains in-flight traffic after the workload completes.
	Settle time.Duration
	// ConvergeWait bounds the extra wait for digest convergence.
	ConvergeWait time.Duration
	// Downtime is how long a Restart cell's victim stays crashed before it
	// is rebuilt from its durable store.
	Downtime time.Duration
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients <= 0 {
		c.Clients = 3
	}
	if c.Requests == 0 {
		c.Requests = 8
	}
	if c.Contention == 0 {
		c.Contention = 0.5
	}
	if c.JoinStagger == 0 {
		c.JoinStagger = 300 * time.Millisecond
	}
	if c.HealAt == 0 {
		// Early enough that a healthy slice of the workload runs after the
		// heal: post-heal traffic is what drives checkpoint stabilization
		// and state-transfer catch-up for partition victims.
		c.HealAt = 3 * time.Second
	}
	if c.Deadline == 0 {
		c.Deadline = 300 * time.Second
	}
	if c.Settle == 0 {
		c.Settle = 5 * time.Second
	}
	if c.ConvergeWait == 0 {
		c.ConvergeWait = 60 * time.Second
	}
	if c.Downtime == 0 {
		c.Downtime = 2 * time.Second
	}
	return c
}

// Result is one cell run's outcome.
type Result struct {
	Cell        Cell
	Seed        int64
	Pass        bool
	Violations  []string
	Completed   int
	Expected    int
	Mean        time.Duration
	POMs        uint64
	VirtualTime time.Duration
	// CatchupInstalls and CatchupMismatches sum the correct replicas'
	// state-transfer telemetry: transfers installed, and responders
	// convicted of disagreeing with the installed f+1 majority
	// (cross-validation's lie detector; ezBFT and PBFT only).
	CatchupInstalls   uint64
	CatchupMismatches uint64
}

// String renders the replay line a failing test prints.
func (r *Result) String() string {
	status := "PASS"
	if !r.Pass {
		status = "FAIL " + strings.Join(r.Violations, "; ")
		if r.Cell.XFail != "" {
			status = "XFAIL (" + r.Cell.XFail + ") " + strings.Join(r.Violations, "; ")
		}
	}
	return fmt.Sprintf("cell %s seed %d: %s", r.Cell.Name(), r.Seed, status)
}

// hotIncrGen issues INCRs on HotKey with probability Contention and
// private puts otherwise.
type hotIncrGen struct {
	Contention float64
}

func (g hotIncrGen) Next(ctx proc.Context, client types.ClientID, seq uint64) types.Command {
	if ctx.Rand().Float64() < g.Contention {
		return types.Command{Op: types.OpIncr, Key: HotKey}
	}
	return types.Command{
		Op:    types.OpPut,
		Key:   fmt.Sprintf("c%03d:%04d", uint32(client)%1000, seq%10000),
		Value: []byte(fmt.Sprintf("v%d", seq)),
	}
}

// recorder tallies completions for the latency and exactly-once checks.
type recorder struct {
	count int
	incrs int
	total time.Duration
}

func (r *recorder) Record(_ types.ClientID, c workload.Completion) {
	r.count++
	if c.Cmd.Op == types.OpIncr {
		r.incrs++
	}
	r.total += c.Latency
}

// Run executes one cell under cfg's fixed seed and checks every
// invariant. The Byzantine strategy (if any) compromises replica 0 — the
// primary of the primary-based protocols, and the command-leader of the
// clients in its region under ezBFT.
func Run(cell Cell, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	topo := wan.DeploymentA()
	regions := topo.Regions()
	n := len(regions)
	const byzID = types.ReplicaID(0)

	spec := bench.Spec{
		Protocol:       cell.Protocol,
		Topology:       topo,
		ReplicaRegions: regions,
		Primary:        0,
		Seed:           cfg.Seed,
		NewApp:         func() types.Application { return NewJournal() },
	}
	if cell.Restart {
		// A crash-restart is only meaningful over a durable store; the
		// memory backend has the exact record/snapshot semantics of disk
		// without I/O in the hot loop of a 300-cell matrix. The retention
		// window keeps peers' suffixes fetchable across the victim's
		// downtime, so its rejoin can ride the incremental tail path
		// instead of falling back to a wholesale transfer.
		spec.Durability = store.BackendMemory
		spec.LogRetention = 64
	}
	if cell.Batching {
		spec.BatchSize = 4
	}
	spec.ExecWorkers = cell.ExecWorkers
	if cell.Checkpointing {
		spec.CheckpointInterval = 8
	}
	if cell.Strategy != nil {
		strat := cell.Strategy
		spec.NewBehavior = func(id types.ReplicaID, a auth.Authenticator) engine.Behavior {
			if id != byzID {
				return nil
			}
			return strat.New(Env{Self: id, N: n, Auth: a, Protocol: cell.Protocol})
		}
	}

	rec := &recorder{}
	drivers := make([]*workload.ClosedLoop, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		drivers[i] = &workload.ClosedLoop{
			Gen:         hotIncrGen{Contention: cfg.Contention},
			Recorder:    rec,
			MaxRequests: cfg.Requests,
		}
		spec.Clients = append(spec.Clients, bench.ClientGroup{
			Region: regions[i%len(regions)],
			Count:  1,
			NewDriver: func(int) workload.Driver {
				return &LateJoin{Inner: drivers[i], Delay: time.Duration(i) * cfg.JoinStagger}
			},
		})
	}

	cl, err := bench.Build(spec)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", cell.Name(), err)
	}
	if cell.Shape != nil {
		env := ShapeEnv{N: n, HealAt: cfg.HealAt, Now: cl.RT.Now, Rand: cl.RT.Kernel().Rand()}
		cl.RT.SetFilter(Compose(cell.Shape.New(env)))
	}

	res := &Result{Cell: cell, Seed: cfg.Seed, Expected: cfg.Clients * int(cfg.Requests)}
	// journal reads replica i's current application — restarts swap in a
	// fresh Journal, so the lookup must go through cl.Apps, not a slice
	// captured at build time.
	journal := func(i int) *Journal { return cl.Apps[i].(*Journal) }
	cl.RT.Start()
	allDone := func() bool {
		for _, d := range drivers {
			if d.Done() < cfg.Requests {
				return false
			}
		}
		return true
	}
	// The crash-restart fault: once half the workload is through, replica 1
	// (honest even in Byzantine cells) is hard-killed, sits out Downtime of
	// virtual time while the cluster progresses without it, and is rebuilt
	// from its durable store with a brand-new application instance.
	const restartID = 1
	if cell.Restart {
		halfDone := func() bool {
			var done uint64
			for _, d := range drivers {
				done += d.Done()
			}
			return 2*done >= uint64(cfg.Clients)*cfg.Requests
		}
		cl.RT.RunUntil(halfDone, cfg.Deadline)
		cl.RT.Crash(types.ReplicaNode(restartID))
		cl.RT.Run(cl.RT.Now() + cfg.Downtime)
		if err := cl.RestartReplica(restartID); err != nil {
			return nil, fmt.Errorf("scenario %s: restart: %w", cell.Name(), err)
		}
	}
	live := cl.RT.RunUntil(allDone, cfg.Deadline)
	cl.RT.Run(cl.RT.Now() + cfg.Settle)

	correct := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if cell.Strategy != nil && types.ReplicaID(i) == byzID {
			continue
		}
		correct = append(correct, i)
	}
	// A partition victim can only recover through state transfer, which
	// requires a checkpointing cell: without checkpoints nothing anchors a
	// transfer, peers retain their full logs, and the victims (correctly,
	// safely) stay behind until retransmission closes the gap — so the
	// convergence and counter checks cover the never-partitioned replicas
	// only. With checkpointing on, every protocol implements catch-up and
	// each victim's recovery is enforced.
	convergent := correct
	if cell.Shape != nil && cell.Shape.Victims != nil && !cell.Checkpointing {
		cut := make(map[int]bool)
		for _, v := range cell.Shape.Victims(n) {
			cut[v] = true
		}
		convergent = convergent[:0:0]
		for _, i := range correct {
			if !cut[i] {
				convergent = append(convergent, i)
			}
		}
	}
	// The same reasoning covers a restart victim: it recovers everything it
	// executed before the crash from its store, but the instances decided
	// during its downtime are only re-obtainable through state transfer —
	// without checkpointing it stays (correctly, safely) behind.
	if cell.Restart && !cell.Checkpointing {
		trimmed := convergent[:0:0]
		for _, i := range convergent {
			if i != restartID {
				trimmed = append(trimmed, i)
			}
		}
		convergent = trimmed
	}
	converged := func() bool {
		ref := journal(convergent[0]).Digest()
		for _, i := range convergent[1:] {
			if journal(i).Digest() != ref {
				return false
			}
		}
		return true
	}
	if !cl.RT.RunUntil(converged, cl.RT.Now()+cfg.ConvergeWait) {
		digests := make([]string, 0, len(convergent))
		for _, i := range convergent {
			digests = append(digests, fmt.Sprintf("r%d=%s", i, journal(i).Digest()))
		}
		res.Violations = append(res.Violations, "digest divergence: "+strings.Join(digests, " "))
	}

	// Liveness: every correct client's workload completed once faults
	// healed (checked after the convergence wait gave stragglers time).
	if !live && !allDone() {
		for i, d := range drivers {
			if d.Done() < cfg.Requests {
				res.Violations = append(res.Violations,
					fmt.Sprintf("liveness: client %d completed %d/%d", i, d.Done(), cfg.Requests))
			}
		}
	}

	// Exactly-once, per replica: the execution journal must hold no
	// duplicate (client, ts)…
	for _, i := range correct {
		for _, d := range journal(i).Duplicates {
			res.Violations = append(res.Violations, fmt.Sprintf("replica %d: %s", i, d))
		}
	}
	// …and end-to-end: the hot counter must equal the completed INCRs
	// exactly (meaningful only when the workload fully completed).
	if allDone() {
		for _, i := range convergent {
			if got := journal(i).Counter(HotKey); got != uint64(rec.incrs) {
				res.Violations = append(res.Violations,
					fmt.Sprintf("replica %d: hot counter %d != %d completed INCRs", i, got, rec.incrs))
			}
		}
	}

	// Restart-specific invariants: the victim must actually have rebuilt
	// itself from its store, and under ezBFT it must have recovered its
	// executed prefix locally — any wholesale state transfer after the
	// restart means recovery failed and the replica re-fetched state it
	// already held durable.
	if cell.Restart {
		switch {
		case len(cl.EZReplicas) == n:
			st := cl.EZReplicas[restartID].Stats()
			if st.Recoveries == 0 {
				res.Violations = append(res.Violations, "restart: replica came back without recovering from its store")
			}
			if wholesale := st.CatchupsInstalled - st.TailsInstalled; wholesale > 0 {
				res.Violations = append(res.Violations,
					fmt.Sprintf("restart: %d wholesale state transfer(s) after recovery (tail-only expected)", wholesale))
			}
		case len(cl.PBReplicas) == n:
			if st := cl.PBReplicas[restartID].Stats(); st.Recoveries == 0 {
				res.Violations = append(res.Violations, "restart: replica came back without recovering from its store")
			}
		}
	}

	// Catch-up telemetry, summed over the correct replicas.
	for _, i := range correct {
		switch {
		case len(cl.EZReplicas) == n:
			st := cl.EZReplicas[i].Stats()
			res.CatchupInstalls += st.CatchupsInstalled
			res.CatchupMismatches += st.CatchupMismatches
		case len(cl.PBReplicas) == n:
			st := cl.PBReplicas[i].Stats()
			res.CatchupInstalls += st.CatchupsInstalled
			res.CatchupMismatches += st.CatchupMismatches
		case len(cl.ZYReplicas) == n:
			res.CatchupInstalls += cl.ZYReplicas[i].Stats().CatchupsInstalled
		case len(cl.FBReplicas) == n:
			res.CatchupInstalls += cl.FBReplicas[i].Stats().CatchupsInstalled
		}
	}

	// No conflicting commit certificates (ezBFT's dependency agreement).
	if len(cl.EZReplicas) == len(cl.Replicas) {
		res.Violations = append(res.Violations, conflictingCerts(cl.EZReplicas, correct)...)
	}

	res.Completed = rec.count
	if rec.count > 0 {
		res.Mean = rec.total / time.Duration(rec.count)
	}
	for _, c := range cl.Clients {
		res.POMs += c.ClientStats().POMsSent
	}
	res.VirtualTime = cl.RT.Now()
	res.Pass = len(res.Violations) == 0
	return res, nil
}

// conflictingCerts cross-checks committed (deps, seq) certificates: two
// correct replicas committing the same instance with different dependency
// sets, sequence numbers, or commands is a safety violation. The shared
// (non-cloning) certificate accessor is safe here: the run is over, the
// certificates are only read, and nothing touches the replicas while the
// comparison holds them.
func conflictingCerts(replicas []*core.Replica, correct []int) []string {
	type owned struct {
		cert core.CommitCert
		by   int
	}
	var out []string
	ref := make(map[types.InstanceID]owned)
	for _, i := range correct {
		for _, cert := range replicas[i].CommittedCertsShared() {
			prev, ok := ref[cert.Inst]
			if !ok {
				ref[cert.Inst] = owned{cert: cert, by: i}
				continue
			}
			if prev.cert.Seq != cert.Seq || prev.cert.CmdDigest != cert.CmdDigest ||
				!prev.cert.Deps.Equal(cert.Deps) {
				out = append(out, fmt.Sprintf(
					"conflicting commit at %v: replica %d (deps %v seq %d) vs replica %d (deps %v seq %d)",
					cert.Inst, prev.by, prev.cert.Deps, prev.cert.Seq, i, cert.Deps, cert.Seq))
			}
		}
	}
	return out
}

// HasStateTransfer reports whether a protocol implements a catch-up /
// state-transfer path (CATCHUP request/response). All four protocols do:
// ezBFT and PBFT since the original catch-up subsystem (with f+1
// cross-validated wholesale transfers), Zyzzyva and FaB via the same
// snapshot + executed-suffix replay pattern ported onto their
// checkpointing contracts.
func HasStateTransfer(p engine.Protocol) bool {
	switch p {
	case engine.EZBFT, engine.PBFT, engine.Zyzzyva, engine.FaB:
		return true
	}
	return false
}

// DefaultMatrix enumerates the full fault matrix: every strategy and
// every shape (plus the honest/clean baseline and two composed
// strategy×shape cells) for all four protocols × batching on/off ×
// checkpointing on/off — and, for ezBFT, every cell again with the
// deterministic parallel executor enabled (ExecWorkers 4), which must be
// indistinguishable from serial execution under every fault.
func DefaultMatrix() []Cell {
	var cells []Cell
	for _, p := range bench.Protocols {
		for _, batch := range []bool{false, true} {
			for _, ckpt := range []bool{false, true} {
				cells = append(cells, Cell{Protocol: p, Batching: batch, Checkpointing: ckpt})
				for _, s := range Strategies() {
					s := s
					cells = append(cells, Cell{Protocol: p, Strategy: &s, Batching: batch, Checkpointing: ckpt})
				}
				for _, sh := range Shapes() {
					sh := sh
					cells = append(cells, Cell{Protocol: p, Shape: &sh, Batching: batch, Checkpointing: ckpt})
				}
				cells = append(cells, Cell{
					Protocol: p, Strategy: StrategyByName("checkpoint-liar"),
					Shape: ShapeByName("slow-links"), Batching: batch, Checkpointing: ckpt,
				})
				// The forged-proof-chain composition: the flapping victim is
				// forced into catch-up while the compromised replica serves
				// it forged snapshots under genuine checkpoint proofs — the
				// cell that makes f+1 cross-validation load-bearing.
				cells = append(cells, Cell{
					Protocol: p, Strategy: StrategyByName("lying-snapshot-responder"),
					Shape: ShapeByName("flapping-partition"), Batching: batch, Checkpointing: ckpt,
				})
			}
		}
	}
	for i := range cells {
		c := &cells[i]
		// Known deficiency, kept visible: FaB's leader change is a
		// simplified skeleton, so a backup that accepted an equivocated
		// proposal is never re-synchronized by the agreement path. With
		// checkpointing on, checkpoint-anchored state transfer re-syncs the
		// victim and the cells are enforced; without checkpoints nothing
		// anchors a transfer and the victim stays diverged.
		if c.Protocol == engine.FaB && !c.Checkpointing &&
			c.Strategy != nil && c.Strategy.Name == "equivocating-owner" {
			c.XFail = "FaB skeleton leader change cannot re-sync an equivocation victim without checkpointed state transfer"
		}
	}
	// The parallel-executor dimension: every ezBFT cell re-run at
	// ExecWorkers 4. Appended as a block so the serial matrix's cell order
	// (and so its per-cell seeds-of-record) stays stable.
	base := len(cells)
	for i := 0; i < base; i++ {
		if cells[i].Protocol != engine.EZBFT {
			continue
		}
		par := cells[i]
		par.ExecWorkers = 4
		cells = append(cells, par)
	}
	// The durability dimension: crash-restart cells for the two protocols
	// with a recovery path, appended (again) so every earlier cell keeps
	// its seed-of-record. Checkpointing variants exercise snapshot-cut
	// recovery plus tail catch-up; the checkpointing-off ezBFT cell
	// recovers by full WAL replay from genesis.
	for _, p := range []engine.Protocol{engine.EZBFT, engine.PBFT} {
		cells = append(cells,
			Cell{Protocol: p, Restart: true, Checkpointing: true},
			Cell{Protocol: p, Restart: true, Batching: true, Checkpointing: true},
		)
	}
	cells = append(cells, Cell{Protocol: engine.EZBFT, Restart: true})
	return cells
}

// SmokeMatrix is the downsized CI gate: one Byzantine strategy and one
// network shape per protocol, fixed seeds, cells verified to pass
// deterministically.
func SmokeMatrix() []Cell {
	return []Cell{
		{Protocol: engine.EZBFT, Strategy: StrategyByName("equivocating-owner"), Batching: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Strategy: StrategyByName("equivocating-owner"), Batching: true, Checkpointing: true, ExecWorkers: 4},
		{Protocol: engine.EZBFT, Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true, ExecWorkers: 4},
		{Protocol: engine.PBFT, Strategy: StrategyByName("checkpoint-liar"), Batching: true, Checkpointing: true},
		{Protocol: engine.PBFT, Shape: ShapeByName("slow-links"), Batching: true, Checkpointing: true},
		{Protocol: engine.Zyzzyva, Strategy: StrategyByName("stale-order-replay"), Batching: true, Checkpointing: true},
		{Protocol: engine.Zyzzyva, Strategy: StrategyByName("silent-owner"), Batching: true, Checkpointing: true},
		{Protocol: engine.Zyzzyva, Shape: ShapeByName("reorder-dup"), Batching: true, Checkpointing: true},
		{Protocol: engine.FaB, Strategy: StrategyByName("slow-owner"), Batching: true, Checkpointing: true},
		{Protocol: engine.FaB, Shape: ShapeByName("dup-requests"), Batching: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Restart: true, Batching: true, Checkpointing: true},
		{Protocol: engine.PBFT, Restart: true, Batching: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Strategy: StrategyByName("lying-snapshot-responder"),
			Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true},
		{Protocol: engine.PBFT, Strategy: StrategyByName("lying-snapshot-responder"),
			Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true},
		{Protocol: engine.FaB, Shape: ShapeByName("view-change-storm"), Batching: true, Checkpointing: true},
	}
}

// MatrixReport is a rendered matrix run.
type MatrixReport struct {
	Results []*Result
}

// RunMatrix executes every cell under the same config.
func RunMatrix(cells []Cell, cfg Config) (*MatrixReport, error) {
	rep := &MatrixReport{Results: make([]*Result, 0, len(cells))}
	for _, cell := range cells {
		res, err := Run(cell, cfg)
		if err != nil {
			return nil, err
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// Failures returns the unexpectedly failing cells (expected failures —
// cells whose XFail documents a known deficiency — are excluded).
func (r *MatrixReport) Failures() []*Result {
	var out []*Result
	for _, res := range r.Results {
		if !res.Pass && res.Cell.XFail == "" {
			out = append(out, res)
		}
	}
	return out
}

// Render implements the bench CLI's renderer contract: a per-cell
// pass/latency table, with every failing cell's replay line (cell name +
// seed) below it.
func (r *MatrixReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario matrix: %d cells, %d failing\n", len(r.Results), len(r.Failures()))
	fmt.Fprintf(&b, "%-48s %-5s %9s %10s %6s %8s\n", "cell", "ok", "done", "mean", "POMs", "vtime")
	for _, res := range r.Results {
		ok := "pass"
		switch {
		case !res.Pass && res.Cell.XFail != "":
			ok = "xfail"
		case !res.Pass:
			ok = "FAIL"
		case res.Cell.XFail != "":
			ok = "XPASS"
		}
		fmt.Fprintf(&b, "%-48s %-5s %4d/%-4d %10s %6d %8s\n",
			res.Cell.Name(), ok, res.Completed, res.Expected,
			res.Mean.Round(time.Millisecond), res.POMs, res.VirtualTime.Round(time.Second))
	}
	for _, res := range r.Results {
		if !res.Pass {
			fmt.Fprintf(&b, "replay: %s\n", res)
		}
	}
	return b.String()
}
