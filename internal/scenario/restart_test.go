package scenario

import (
	"testing"

	"ezbft/internal/engine"
)

func TestRestartCells(t *testing.T) {
	for _, cell := range []Cell{
		{Protocol: engine.EZBFT, Restart: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Restart: true, Batching: true, Checkpointing: true},
		{Protocol: engine.EZBFT, Restart: true},
		{Protocol: engine.PBFT, Restart: true, Checkpointing: true},
		{Protocol: engine.PBFT, Restart: true, Batching: true, Checkpointing: true},
	} {
		res, err := Run(cell, Config{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", cell.Name(), err)
		}
		t.Logf("%s", res)
		if !res.Pass {
			t.Errorf("FAIL %s", res)
		}
	}
}
