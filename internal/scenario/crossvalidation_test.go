package scenario

import (
	"testing"

	"ezbft/internal/engine"
)

// TestCrossValidationConviction drives the forged-proof-chain cell: the
// flapping victim is forced into catch-up while the compromised replica
// serves it the real response with forged snapshot bytes under a genuine
// checkpoint proof and a valid signature. For ezBFT and PBFT every
// per-message check passes, so only f+1 cross-validation stands between
// the victim and corrupted state: the cell must converge AND the liar
// must show up in CatchupMismatches — a zero count would mean the forgery
// was never solicited and the cell proves nothing.
func TestCrossValidationConviction(t *testing.T) {
	for _, p := range []engine.Protocol{engine.EZBFT, engine.PBFT} {
		for _, seed := range []int64{1, 2, 3} {
			cell := Cell{
				Protocol: p, Strategy: StrategyByName("lying-snapshot-responder"),
				Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true,
			}
			res, err := Run(cell, Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", cell.Name(), seed, err)
			}
			if !res.Pass {
				t.Errorf("%s seed %d: %v", cell.Name(), seed, res.Violations)
			}
			if res.CatchupInstalls == 0 {
				t.Errorf("%s seed %d: no state transfer installed — the victim never exercised catch-up", cell.Name(), seed)
			}
			if res.CatchupMismatches == 0 {
				t.Errorf("%s seed %d: forged responder never convicted (CatchupMismatches == 0)", cell.Name(), seed)
			}
		}
	}
}

// TestCrossValidationRejection covers the single-responder protocols:
// Zyzzyva and FaB pin snapshot bytes to the quorum checkpoint digest at
// install time, so the forgery is rejected outright and responder
// rotation must still land an honest transfer.
func TestCrossValidationRejection(t *testing.T) {
	for _, p := range []engine.Protocol{engine.Zyzzyva, engine.FaB} {
		for _, seed := range []int64{1, 2, 3} {
			cell := Cell{
				Protocol: p, Strategy: StrategyByName("lying-snapshot-responder"),
				Shape: ShapeByName("flapping-partition"), Batching: true, Checkpointing: true,
			}
			res, err := Run(cell, Config{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", cell.Name(), seed, err)
			}
			if !res.Pass {
				t.Errorf("%s seed %d: %v", cell.Name(), seed, res.Violations)
			}
			if res.CatchupInstalls == 0 {
				t.Errorf("%s seed %d: no state transfer installed — the victim never exercised catch-up", cell.Name(), seed)
			}
		}
	}
}
