package scenario

import "testing"

// TestShardSmokeCells is the sharded slice of the CI gate: a flapping
// partition inside one shard's consensus group must leave the other shard
// unimpeded, keep cross-shard transactions atomic (post-heal ones must
// commit), and the victim shard must rejoin convergence through state
// transfer once the shape heals.
func TestShardSmokeCells(t *testing.T) {
	seed := SeedFromEnv(1)
	for _, cell := range ShardSmokeCells() {
		cell := cell
		t.Run(cell.Name(), func(t *testing.T) {
			res, err := RunShard(cell, Config{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Pass {
				t.Fatalf("replay: %s (EZBFT_SCENARIO_SEED=%d)", res, seed)
			}
			if res.TxnsCommitted == 0 {
				t.Fatalf("no cross-shard transaction committed (EZBFT_SCENARIO_SEED=%d)", seed)
			}
		})
	}
}
