package scenario

import (
	"testing"

	"ezbft/internal/engine"
)

// TestSmokeMatrix is the CI gate: the downsized matrix must pass
// deterministically. Failures print the replay line (cell name + seed);
// rerun with EZBFT_SCENARIO_SEED=<seed> to reproduce.
func TestSmokeMatrix(t *testing.T) {
	seed := SeedFromEnv(1)
	rep, err := RunMatrix(SmokeMatrix(), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("replay: %s (EZBFT_SCENARIO_SEED=%d)", f, seed)
	}
	if t.Failed() {
		t.Log("\n" + rep.Render())
	}
}

// TestFullMatrix runs every cell of the fault matrix — all four
// protocols × batching × checkpointing × the strategy and shape
// catalogues, plus every ezBFT cell again under the parallel executor.
// Known deficiencies are encoded as XFail on their cells; an unexpected
// failure prints its replay line.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 345-cell matrix (not short)")
	}
	seed := SeedFromEnv(1)
	rep, err := RunMatrix(DefaultMatrix(), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("replay: %s (EZBFT_SCENARIO_SEED=%d)", f, seed)
	}
	// An XPASS means a documented deficiency got fixed: promote the cell
	// by clearing its XFail instead of letting the annotation rot.
	for _, res := range rep.Results {
		if res.Pass && res.Cell.XFail != "" {
			t.Errorf("XPASS: cell %s seed %d passed despite XFail %q — remove the annotation",
				res.Cell.Name(), seed, res.Cell.XFail)
		}
	}
	if t.Failed() {
		t.Log("\n" + rep.Render())
	}
}

// TestParallelExecutorCellIdentical pins the executor's determinism at the
// whole-simulation level: an ezBFT cell run with the parallel executor must
// produce the same completions, mean latency, and virtual end time as its
// serial twin — simulated time advances identically because execution costs
// are charged at the same points regardless of worker count.
func TestParallelExecutorCellIdentical(t *testing.T) {
	seed := SeedFromEnv(1)
	serialCell := Cell{Protocol: engine.EZBFT, Batching: true, Checkpointing: true}
	parCell := serialCell
	parCell.ExecWorkers = 8
	serial, err := Run(serialCell, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(parCell, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Pass {
		t.Fatalf("serial cell failed: %v", serial.Violations)
	}
	if !par.Pass {
		t.Fatalf("parallel cell failed: %v", par.Violations)
	}
	if serial.Completed != par.Completed || serial.Mean != par.Mean ||
		serial.VirtualTime != par.VirtualTime || serial.POMs != par.POMs {
		t.Errorf("parallel cell diverged from serial: serial {done %d mean %v vtime %v poms %d} vs parallel {done %d mean %v vtime %v poms %d}",
			serial.Completed, serial.Mean, serial.VirtualTime, serial.POMs,
			par.Completed, par.Mean, par.VirtualTime, par.POMs)
	}
}

// TestEquivocationProducesPOM pins the "Revisiting EZBFT" attack surface:
// an owner that signs the same batch into two instances must be convicted
// — some client assembles a proof of misbehaviour from the conflicting
// signed SPECORDERs — while the run still completes and converges.
func TestEquivocationProducesPOM(t *testing.T) {
	seed := SeedFromEnv(1)
	cell := Cell{
		Protocol: engine.EZBFT,
		Strategy: StrategyByName("equivocating-owner"),
		Batching: true, Checkpointing: true,
	}
	res, err := Run(cell, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("replay: %s (EZBFT_SCENARIO_SEED=%d)", res, seed)
	}
	if res.POMs == 0 {
		t.Fatalf("equivocating owner was not convicted: 0 POMs sent (EZBFT_SCENARIO_SEED=%d)", seed)
	}
}

// TestCataloguesResolve guards the name-based lookups the CLI and CI use.
func TestCataloguesResolve(t *testing.T) {
	for _, s := range Strategies() {
		if StrategyByName(s.Name) == nil {
			t.Errorf("StrategyByName(%q) = nil", s.Name)
		}
	}
	for _, sh := range Shapes() {
		if ShapeByName(sh.Name) == nil {
			t.Errorf("ShapeByName(%q) = nil", sh.Name)
		}
	}
	if StrategyByName("no-such-strategy") != nil || ShapeByName("no-such-shape") != nil {
		t.Error("unknown names must resolve to nil")
	}
}
