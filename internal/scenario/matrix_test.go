package scenario

import (
	"testing"

	"ezbft/internal/engine"
)

// TestSmokeMatrix is the CI gate: the downsized matrix must pass
// deterministically. Failures print the replay line (cell name + seed);
// rerun with EZBFT_SCENARIO_SEED=<seed> to reproduce.
func TestSmokeMatrix(t *testing.T) {
	seed := SeedFromEnv(1)
	rep, err := RunMatrix(SmokeMatrix(), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("replay: %s (EZBFT_SCENARIO_SEED=%d)", f, seed)
	}
	if t.Failed() {
		t.Log("\n" + rep.Render())
	}
}

// TestFullMatrix runs every cell of the fault matrix — all four
// protocols × batching × checkpointing × the strategy and shape
// catalogues. Known deficiencies are encoded as XFail on their cells; an
// unexpected failure prints its replay line.
func TestFullMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 224-cell matrix (not short)")
	}
	seed := SeedFromEnv(1)
	rep, err := RunMatrix(DefaultMatrix(), Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Failures() {
		t.Errorf("replay: %s (EZBFT_SCENARIO_SEED=%d)", f, seed)
	}
	// An XPASS means a documented deficiency got fixed: promote the cell
	// by clearing its XFail instead of letting the annotation rot.
	for _, res := range rep.Results {
		if res.Pass && res.Cell.XFail != "" {
			t.Errorf("XPASS: cell %s seed %d passed despite XFail %q — remove the annotation",
				res.Cell.Name(), seed, res.Cell.XFail)
		}
	}
	if t.Failed() {
		t.Log("\n" + rep.Render())
	}
}

// TestEquivocationProducesPOM pins the "Revisiting EZBFT" attack surface:
// an owner that signs the same batch into two instances must be convicted
// — some client assembles a proof of misbehaviour from the conflicting
// signed SPECORDERs — while the run still completes and converges.
func TestEquivocationProducesPOM(t *testing.T) {
	seed := SeedFromEnv(1)
	cell := Cell{
		Protocol: engine.EZBFT,
		Strategy: StrategyByName("equivocating-owner"),
		Batching: true, Checkpointing: true,
	}
	res, err := Run(cell, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("replay: %s (EZBFT_SCENARIO_SEED=%d)", res, seed)
	}
	if res.POMs == 0 {
		t.Fatalf("equivocating owner was not convicted: 0 POMs sent (EZBFT_SCENARIO_SEED=%d)", seed)
	}
}

// TestCataloguesResolve guards the name-based lookups the CLI and CI use.
func TestCataloguesResolve(t *testing.T) {
	for _, s := range Strategies() {
		if StrategyByName(s.Name) == nil {
			t.Errorf("StrategyByName(%q) = nil", s.Name)
		}
	}
	for _, sh := range Shapes() {
		if ShapeByName(sh.Name) == nil {
			t.Errorf("ShapeByName(%q) = nil", sh.Name)
		}
	}
	if StrategyByName("no-such-strategy") != nil || ShapeByName("no-such-shape") != nil {
		t.Error("unknown names must resolve to nil")
	}
}
