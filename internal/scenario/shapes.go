package scenario

import (
	"math/rand"
	"time"

	"ezbft/internal/codec"
	"ezbft/internal/sim"
	"ezbft/internal/types"
)

// ShapeEnv gives a shape the cluster facts and the virtual clock it needs.
// Now is read at filter time, so one filter serves the whole run; Rand is
// the kernel's deterministic RNG.
type ShapeEnv struct {
	N      int
	HealAt time.Duration
	Now    func() time.Duration
	Rand   *rand.Rand
}

// Shape is a named hostile network condition built on sim.Filter.
type Shape struct {
	Name string
	New  func(env ShapeEnv) sim.Filter
	// Victims lists the replicas the shape cuts off entirely for whole
	// windows (nil when it never fully isolates anyone). Recovering from
	// such a cut requires state transfer, so the harness demands the
	// victims' convergence only in cells where checkpointing (and with it
	// the catch-up protocol) is enabled.
	Victims func(n int) []int
}

// Shapes returns the catalogue of network shapes.
func Shapes() []Shape {
	return []Shape{
		{Name: "flapping-partition", New: flappingPartition, Victims: lastReplica},
		{Name: "view-change-storm", New: viewChangeStorm, Victims: allButLast},
		{Name: "asym-delay", New: asymmetricDelay},
		{Name: "reorder-dup", New: reorderDuplicate},
		{Name: "slow-links", New: slowLinks},
		{Name: "dup-requests", New: duplicateRequests},
	}
}

func lastReplica(n int) []int { return []int{n - 1} }

func allButLast(n int) []int {
	vs := make([]int, 0, n-1)
	for i := 0; i < n-1; i++ {
		vs = append(vs, i)
	}
	return vs
}

// ShapeByName resolves a catalogue entry (nil when unknown).
func ShapeByName(name string) *Shape {
	for _, s := range Shapes() {
		if s.Name == name {
			s := s
			return &s
		}
	}
	return nil
}

// Compose chains filters: Drop dominates, Duplicate beats Deliver, and
// extra delays add. Nil filters are skipped, so strategy-only cells can
// pass a nil shape filter straight through.
func Compose(filters ...sim.Filter) sim.Filter {
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		verdict := sim.Deliver
		var extra time.Duration
		for _, f := range filters {
			if f == nil {
				continue
			}
			v, d := f(from, to, msg)
			if v == sim.Drop {
				return sim.Drop, 0
			}
			if v == sim.Duplicate {
				verdict = sim.Duplicate
			}
			extra += d
		}
		return verdict, extra
	}
}

// flappingPartition isolates the highest-numbered replica on a 2s cycle —
// 1s cut off, 1s connected — until the shape heals. The flapping is the
// hard part: each reconnection floods the victim with missed traffic just
// before the next cut.
func flappingPartition(env ShapeEnv) sim.Filter {
	victim := types.ReplicaNode(types.ReplicaID(env.N - 1))
	const period = 2 * time.Second
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		now := env.Now()
		if now >= env.HealAt {
			return sim.Deliver, 0
		}
		if (from == victim || to == victim) && (now/(period/2))%2 == 0 {
			return sim.Drop, 0
		}
		return sim.Deliver, 0
	}
}

// viewChangeStorm repeatedly decapitates the cluster: on a 4s cycle it
// isolates replica (cycle mod N-1) for the first 2s, then reconnects it
// for 2s. The rotation chases the advancing leadership — cutting the
// view-0 primary forces a view change, the next cycle cuts the replica
// that just inherited the role, and so on — so the cluster must absorb
// back-to-back view changes while each deposed primary returns with a
// log gap only state transfer can close. Replica N-1 is never cut,
// keeping at least one replica with guaranteed full state.
func viewChangeStorm(env ShapeEnv) sim.Filter {
	const period = 4 * time.Second
	rotation := env.N - 1
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		now := env.Now()
		if now >= env.HealAt || now%period >= period/2 {
			return sim.Deliver, 0
		}
		target := types.ReplicaNode(types.ReplicaID(int(now/period) % rotation))
		if from == target || to == target {
			return sim.Drop, 0
		}
		return sim.Deliver, 0
	}
}

// asymmetricDelay slows one direction only: everything replica 1 sends
// takes an extra 250ms, while traffic toward it is unaffected — the
// congested-uplink asymmetry that desynchronizes timeout estimates.
func asymmetricDelay(env ShapeEnv) sim.Filter {
	slow := types.ReplicaNode(1)
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if env.Now() < env.HealAt && from == slow {
			return sim.Deliver, 250 * time.Millisecond
		}
		return sim.Deliver, 0
	}
}

// reorderDuplicate delivers a random fifth of all messages twice, the
// copy 40–120ms late — behind newer traffic, so recipients see both
// duplication and reordering.
func reorderDuplicate(env ShapeEnv) sim.Filter {
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if env.Now() < env.HealAt && env.Rand.Float64() < 0.2 {
			return sim.Duplicate, 40*time.Millisecond + time.Duration(env.Rand.Int63n(int64(80*time.Millisecond)))
		}
		return sim.Deliver, 0
	}
}

// slowLinks adds up to 60ms of jitter to every message — degraded WAN
// links on top of the topology's base latencies.
func slowLinks(env ShapeEnv) sim.Filter {
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if env.Now() < env.HealAt {
			return sim.Deliver, time.Duration(env.Rand.Int63n(int64(60 * time.Millisecond)))
		}
		return sim.Deliver, 0
	}
}

// duplicateRequests clones every client-to-replica message with ~1.5s of
// skew — the duplicate resubmission a retransmitting WAN client produces.
// Replicas must answer the late copy from the reply cache, never by
// re-executing.
func duplicateRequests(env ShapeEnv) sim.Filter {
	return func(from, to types.NodeID, msg codec.Message) (sim.Verdict, time.Duration) {
		if env.Now() < env.HealAt && from.IsClient() && to.IsReplica() {
			return sim.Duplicate, 1500 * time.Millisecond
		}
		return sim.Deliver, 0
	}
}
