package scenario

import "testing"

func TestSeedFromEnv(t *testing.T) {
	t.Setenv(SeedEnv, "")
	if got := SeedFromEnv(7); got != 7 {
		t.Errorf("unset env: got %d, want default 7", got)
	}
	t.Setenv(SeedEnv, "42")
	if got := SeedFromEnv(7); got != 42 {
		t.Errorf("env 42: got %d", got)
	}
	t.Setenv(SeedEnv, "bogus")
	if got := SeedFromEnv(7); got != 7 {
		t.Errorf("invalid env: got %d, want default 7", got)
	}
	t.Setenv(SeedEnv, "0")
	if got := SeedFromEnv(7); got != 7 {
		t.Errorf("zero env: got %d, want default 7", got)
	}
}
