package scenario

import (
	"os"
	"strconv"
)

// SeedEnv is the environment variable scenario and soak tests read to
// replay a failure: set it to the seed a failing run printed.
const SeedEnv = "EZBFT_SCENARIO_SEED"

// SeedFromEnv returns the seed in SeedEnv, or def when unset/invalid.
func SeedFromEnv(def int64) int64 {
	if v := os.Getenv(SeedEnv); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil && s != 0 {
			return s
		}
	}
	return def
}
