// Package scenario is the adversarial scenario harness: it composes
// Byzantine replica strategies, hostile network shapes, and client churn
// into reproducible fault-matrix runs over the deterministic simulator,
// and checks protocol invariants after every run. It is the regression
// gate the ROADMAP calls for: every attack from the "Revisiting EZBFT"
// note that this repository can express lives here as a named, replayable
// cell.
//
// # Composition model
//
// A scenario cell is the product of four independent axes:
//
//   - a Strategy: a named Byzantine behaviour injected into one replica
//     through the engine.Behavior hook. A strategy intercepts the
//     compromised replica's outbound and inbound messages, and may
//     suppress, mutate (copy + re-sign with the replica's own key), delay,
//     or replay them. Strategies are protocol-agnostic: they type-switch
//     on the concrete wire messages of all four protocols and wave
//     everything they do not target through, so one strategy definition
//     attacks ezBFT, PBFT, Zyzzyva and FaB alike.
//   - a Shape: a named hostile network condition built on sim.Filter —
//     flapping partitions, asymmetric delay, reorder/duplication, slow
//     links. Shapes heal at a configurable virtual time (HealAt), which is
//     what makes liveness checkable: after the network heals, every
//     correct client's commands must complete. Compose chains any number
//     of shape filters (Drop dominates, Duplicate beats Deliver, extra
//     delays add), so partitions and reordering can be active at once.
//   - client churn: staggered joins (LateJoin wraps any workload.Driver),
//     leaves (closed-loop drivers going quiet after MaxRequests), and
//     duplicate request resubmission (the DuplicateRequests shape clones
//     client traffic with seconds of skew — the retransmission a real WAN
//     produces).
//   - the protocol configuration: protocol × batching on/off ×
//     checkpointing on/off.
//
// Run executes one cell under a fixed seed and returns a Result; the
// invariant checks are
//
//   - converged application digests across all correct replicas,
//   - exactly-once execution per (client, timestamp) — both a journal of
//     final executions (no duplicates on any correct replica) and an
//     end-to-end INCR counter on the contended hot key that must equal
//     the number of completed INCR requests,
//   - no conflicting commit certificates: two correct ezBFT replicas must
//     never commit the same instance with different dependency sets or
//     sequence numbers,
//   - liveness: every correct client's workload completes once faults
//     heal.
//
// Every failure is reproducible from the printed seed + cell name: rerun
// the same cell with the same seed (tests read EZBFT_SCENARIO_SEED) and
// the simulation replays event-for-event.
//
// # Attack catalogue
//
// Strategies() returns the encoded catalogue: equivocating owner (the
// instance-skew double-signing attack of the "Revisiting EZBFT" note —
// detected on ezBFT by the client's POM check, deposed by view change on
// the baselines), stale ordering replay, checkpoint-vote lying,
// commit flooding, silent owner, slow owner, lying catch-up responder
// (garbage snapshot bytes — rejected by parse/digest checks), and lying
// snapshot responder (the stealthy variant: the real catch-up response
// with one flipped snapshot byte under a genuine checkpoint proof and a
// valid signature, so every per-message check passes and only f+1
// cross-validation of independent responders convicts the forgery on
// ezBFT and PBFT, while Zyzzyva's and FaB's digest-pinned snapshots
// reject it at install time).
//
// Shapes() adds the hostile network catalogue, including the
// view-change-storm shape: repeated isolate/heal cycles that chase the
// advancing leadership (cut the primary, let the view change elect a
// successor, cut the successor), forcing back-to-back view changes while
// each deposed primary returns with a log gap only state transfer can
// close. DefaultMatrix crosses both catalogues with all four protocols ×
// batching × checkpointing; `ezbft-bench -e scenarios` runs it and
// renders the per-cell pass/latency report.
package scenario
