package scenario

import (
	"time"

	"ezbft/internal/proc"
	"ezbft/internal/workload"
)

// lateJoinTimer is the driver-range timer id LateJoin reserves for its
// join delay; inner drivers use ids at DriverTimerBase and the harness
// keeps this one far above them.
const lateJoinTimer = workload.DriverTimerBase + 1<<20

// LateJoin delays a driver's start — client join churn. Leaves are the
// dual and need no wrapper: a closed-loop driver that reaches MaxRequests
// goes quiet, so staggering Delay across clients produces a population
// that grows and shrinks over the run.
type LateJoin struct {
	Inner workload.Driver
	Delay time.Duration
}

var _ workload.Driver = (*LateJoin)(nil)

// Start implements workload.Driver.
func (d *LateJoin) Start(ctx proc.Context, s workload.Submitter) {
	if d.Delay <= 0 {
		d.Inner.Start(ctx, s)
		return
	}
	ctx.SetTimer(lateJoinTimer, d.Delay)
}

// Completed implements workload.Driver.
func (d *LateJoin) Completed(ctx proc.Context, s workload.Submitter, c workload.Completion) {
	d.Inner.Completed(ctx, s, c)
}

// OnTimer implements workload.Driver.
func (d *LateJoin) OnTimer(ctx proc.Context, s workload.Submitter, id proc.TimerID) {
	if id == lateJoinTimer {
		d.Inner.Start(ctx, s)
		return
	}
	d.Inner.OnTimer(ctx, s, id)
}
